//! The session hub: multi-tenant Labs state behind the wire protocol.
//!
//! One hub owns the WAL-backed [`SessionStore`], the per-tenant quota
//! meters, the plan cache, and the registry of in-flight attempts. The
//! flow of one attempt:
//!
//! 1. **Reserve** — under the tenant lock, check the quota counting both
//!    committed runs *and* reservations already in flight (so two
//!    concurrent attempts cannot both claim the last run), check the
//!    per-tenant in-flight cap, cap the rows, and claim a run id.
//! 2. **Compile** — through the [`PlanCache`]: identical concurrent
//!    compiles coalesce onto one plan.
//! 3. **Execute** — `execute_prepared` on a clone of the shared plan with
//!    a per-attempt [`RunControl`] attached (drain cancels through it)
//!    and a thread budget capped so concurrent attempts don't
//!    oversubscribe the host. No hub lock is held during execution.
//! 4. **Commit** — run, score and updated meta WAL-committed under the
//!    store lock before the reply leaves; a crash after commit loses
//!    nothing.
//!
//! Failures release the reservation; the claimed run id is simply never
//! used (gaps in run ids are harmless — ids only need to be monotone).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use toreador_core::compile::Bdaas;
use toreador_core::declarative::Indicator;
use toreador_dataflow::resilience::RunControl;
use toreador_labs::prelude::*;
use toreador_store::StoreConfig;

use crate::coalesce::{plan_key, PlanCache, PlanSource};
use crate::proto::{
    AttemptReply, AttemptRequest, CompareReply, ErrorBody, ErrorClass, HistoryEntry, HistoryReply,
    OpenSessionRequest, SessionInfo,
};

/// Hub tuning.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Max attempts one tenant may have executing at once.
    pub tenant_inflight: usize,
    /// Engine threads granted to each attempt.
    pub threads_per_attempt: usize,
    /// Quota granted to tenants the store has never seen.
    pub default_quota: Quota,
    /// Default data seed for new tenants.
    pub default_seed: u64,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            tenant_inflight: 2,
            threads_per_attempt: 2,
            default_quota: Quota::free_tier(),
            default_seed: 7,
        }
    }
}

/// A typed service error: a class the wire protocol understands plus a
/// message.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeError {
    pub class: ErrorClass,
    pub message: String,
}

impl ServeError {
    pub fn new(class: ErrorClass, message: impl Into<String>) -> ServeError {
        ServeError {
            class,
            message: message.into(),
        }
    }

    /// The wire body for this error.
    pub fn body(&self) -> ErrorBody {
        ErrorBody {
            class: self.class,
            message: self.message.clone(),
        }
    }
}

fn labs_err(e: LabsError) -> ServeError {
    let class = match &e {
        LabsError::QuotaExceeded(_) => ErrorClass::QuotaExceeded,
        LabsError::Unknown(_) => ErrorClass::Unknown,
        LabsError::BadChoice(_) => ErrorClass::BadRequest,
        _ => ErrorClass::Internal,
    };
    ServeError::new(class, e.to_string())
}

/// Result alias for hub operations.
pub type ServeResult<T> = Result<T, ServeError>;

/// In-memory quota meter for one tenant. `committed_*` mirror the store;
/// `reserved` counts attempts admitted but not yet committed.
#[derive(Debug)]
struct Tenant {
    quota: Quota,
    seed: u64,
    committed_runs: u64,
    committed_cost: f64,
    next_run_id: u64,
    reserved: usize,
}

/// One executing attempt, registered so drain can cancel it.
#[derive(Debug)]
struct RunningAttempt {
    control: RunControl,
}

/// The multi-tenant Labs service state. Thread-safe: server connection
/// threads share one hub behind an `Arc`.
pub struct SessionHub {
    bdaas: Bdaas,
    cfg: HubConfig,
    store: Mutex<SessionStore>,
    tenants: Mutex<BTreeMap<String, Tenant>>,
    plans: PlanCache,
    /// (trainee, run_id) -> cancel handle, for every executing attempt.
    running: Mutex<BTreeMap<(String, u64), RunningAttempt>>,
    completed: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_busy: AtomicU64,
}

impl SessionHub {
    /// Open the store in `dir` (taking its directory lock) and build the
    /// hub around it.
    pub fn open(dir: &std::path::Path, cfg: HubConfig) -> ServeResult<SessionHub> {
        // Serving appends run records continuously; snapshot less often
        // than the interactive default so compaction isn't the bottleneck.
        let store_cfg = StoreConfig {
            snapshot_every: 1024,
            ..StoreConfig::default()
        };
        let store = SessionStore::open_with(dir, store_cfg)
            .map_err(|e| ServeError::new(ErrorClass::Internal, e.to_string()))?;
        Ok(SessionHub::with_store(store, cfg))
    }

    /// Build a hub over an already-open store (tests).
    pub fn with_store(store: SessionStore, cfg: HubConfig) -> SessionHub {
        SessionHub {
            bdaas: Bdaas::new(),
            cfg,
            store: Mutex::new(store),
            tenants: Mutex::new(BTreeMap::new()),
            plans: PlanCache::new(),
            running: Mutex::new(BTreeMap::new()),
            completed: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
        }
    }

    /// Open (or resume) a tenant session. Mirrors `LabSession::open`:
    /// persisted quota and seed win for a known trainee.
    pub fn open_session(&self, req: &OpenSessionRequest) -> ServeResult<SessionInfo> {
        if req.trainee.is_empty() {
            return Err(ServeError::new(
                ErrorClass::BadRequest,
                "trainee name must not be empty",
            ));
        }
        let mut tenants = self.tenants.lock().expect("tenants poisoned");
        if let Some(t) = tenants.get(&req.trainee) {
            return Ok(SessionInfo {
                trainee: req.trainee.clone(),
                quota: t.quota,
                runs_used: t.committed_runs,
                cost_used: t.committed_cost,
                seed: t.seed,
                resumed: true,
            });
        }
        let mut store = self.store.lock().expect("store poisoned");
        let (tenant, resumed) = match store.trainee(&req.trainee) {
            Some(state) => (
                Tenant {
                    quota: state.meta.quota,
                    seed: state.meta.seed,
                    committed_runs: state.runs.len() as u64,
                    committed_cost: state.meta.total_cost,
                    next_run_id: store.next_run_id(&req.trainee),
                    reserved: 0,
                },
                true,
            ),
            None => {
                let quota = req.quota.unwrap_or(self.cfg.default_quota);
                let seed = req.seed.unwrap_or(self.cfg.default_seed);
                let meta = SessionMeta {
                    quota,
                    total_cost: 0.0,
                    seed,
                };
                store
                    .put_meta(&req.trainee, &meta)
                    .map_err(|e| ServeError::new(ErrorClass::Internal, e.to_string()))?;
                (
                    Tenant {
                        quota,
                        seed,
                        committed_runs: 0,
                        committed_cost: 0.0,
                        next_run_id: 1,
                        reserved: 0,
                    },
                    false,
                )
            }
        };
        drop(store);
        let info = SessionInfo {
            trainee: req.trainee.clone(),
            quota: tenant.quota,
            runs_used: tenant.committed_runs,
            cost_used: tenant.committed_cost,
            seed: tenant.seed,
            resumed,
        };
        tenants.insert(req.trainee.clone(), tenant);
        Ok(info)
    }

    /// Execute one attempt end to end (reserve → compile → run → commit).
    /// The caller has already passed service-wide admission; this enforces
    /// the per-tenant limits.
    pub fn attempt(&self, req: &AttemptRequest) -> ServeResult<AttemptReply> {
        let challenge = challenge(&req.challenge).map_err(labs_err)?;
        let scen = scenario(challenge.scenario_id).map_err(labs_err)?;

        // 1. Reserve under the tenant lock.
        let (run_id, rows, seed, control) = {
            let mut tenants = self.tenants.lock().expect("tenants poisoned");
            let tenant = tenants.get_mut(&req.trainee).ok_or_else(|| {
                ServeError::new(
                    ErrorClass::Unknown,
                    format!(
                        "no open session for trainee {:?} (open one first)",
                        req.trainee
                    ),
                )
            })?;
            if tenant.reserved >= self.cfg.tenant_inflight {
                self.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::new(
                    ErrorClass::Busy,
                    format!(
                        "trainee {:?} already has {} attempts in flight (limit {})",
                        req.trainee, tenant.reserved, self.cfg.tenant_inflight
                    ),
                ));
            }
            let claimed = tenant.committed_runs + tenant.reserved as u64;
            let left = tenant.quota.remaining(claimed, tenant.committed_cost);
            if left.runs == 0 {
                self.rejected_quota.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::new(
                    ErrorClass::QuotaExceeded,
                    format!("run limit reached ({claimed} of {})", tenant.quota.max_runs),
                ));
            }
            if left.cost <= 0.0 {
                self.rejected_quota.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::new(
                    ErrorClass::QuotaExceeded,
                    format!(
                        "cost budget exhausted ({:.1} of {:.1})",
                        tenant.committed_cost, tenant.quota.max_total_cost
                    ),
                ));
            }
            let rows = req
                .rows
                .unwrap_or(scen.default_rows)
                .min(tenant.quota.max_rows_per_run)
                .max(1);
            let run_id = tenant.next_run_id;
            tenant.next_run_id += 1;
            tenant.reserved += 1;
            (run_id, rows, tenant.seed, RunControl::new())
        };
        self.running.lock().expect("running poisoned").insert(
            (req.trainee.clone(), run_id),
            RunningAttempt {
                control: control.clone(),
            },
        );

        // 2–4 with the reservation held; always release it.
        let outcome = self.attempt_reserved(req, &challenge, run_id, rows, seed, &control);
        self.running
            .lock()
            .expect("running poisoned")
            .remove(&(req.trainee.clone(), run_id));
        {
            let mut tenants = self.tenants.lock().expect("tenants poisoned");
            if let Some(t) = tenants.get_mut(&req.trainee) {
                t.reserved = t.reserved.saturating_sub(1);
                if let Ok((_, cost)) = &outcome {
                    t.committed_runs += 1;
                    t.committed_cost += cost;
                }
            }
        }
        let (reply, _) = outcome?;
        self.completed.fetch_add(1, Ordering::Relaxed);
        Ok(reply)
    }

    /// The compile + execute + commit half of [`Self::attempt`]. Returns
    /// the reply and the attempt's cost (the caller updates the meter).
    fn attempt_reserved(
        &self,
        req: &AttemptRequest,
        challenge: &Challenge,
        run_id: u64,
        rows: usize,
        seed: u64,
        control: &RunControl,
    ) -> ServeResult<(AttemptReply, f64)> {
        let choices: ChoiceVector = req.choices.clone();
        let spec = challenge.instantiate(&choices).map_err(labs_err)?;
        let scen = scenario(challenge.scenario_id).map_err(labs_err)?;

        // 2. Compile through the single-flight cache. The schema does not
        // depend on the row count, so a 1-row sample is enough to compile
        // against; `rows` still keys the cache because planning is
        // cost-based.
        let key = plan_key(spec.fingerprint(), rows);
        let (plan, source) = self
            .plans
            .get_or_compile(key, || {
                let sample = scen.generate(1, seed);
                self.bdaas
                    .compile(&spec, sample.schema(), rows)
                    .map_err(|e| e.to_string())
            })
            .map_err(|m| ServeError::new(ErrorClass::Internal, format!("campaign failed: {m}")))?;

        // 3. Execute on a private clone of the shared plan with this
        // attempt's control and thread budget attached.
        let mut owned = (*plan).clone();
        owned.deployment.engine_config = owned
            .deployment
            .engine_config
            .clone()
            .with_threads(self.cfg.threads_per_attempt)
            .with_control(control.clone());
        let record = execute_prepared(&self.bdaas, challenge, &choices, run_id, rows, seed, &owned)
            .map_err(|e| {
                if control.is_cancelled() {
                    ServeError::new(ErrorClass::ShuttingDown, format!("attempt cancelled: {e}"))
                } else {
                    labs_err(e)
                }
            })?;
        let cost = record.indicator(Indicator::Cost).unwrap_or(0.0);
        let runtime_ms = record.indicator(Indicator::RuntimeMs).unwrap_or(0.0);
        let score = assess(challenge, &record).total;

        // 4. WAL-commit run + score + updated meta before replying.
        // Lock order is tenants -> store everywhere (open_session holds
        // tenants while touching the store); taking them in the reverse
        // order here deadlocks an open against a commit.
        let (runs_used, quota) = {
            let tenants = self.tenants.lock().expect("tenants poisoned");
            let tenant = tenants.get(&req.trainee).expect("reserved tenant exists");
            let mut store = self.store.lock().expect("store poisoned");
            store
                .put_run(&req.trainee, run_id, &record)
                .and_then(|()| store.put_score(&req.trainee, run_id, score))
                .map_err(|e| ServeError::new(ErrorClass::Internal, e.to_string()))?;
            let meta = SessionMeta {
                quota: tenant.quota,
                total_cost: tenant.committed_cost + cost,
                seed: tenant.seed,
            };
            store
                .put_meta(&req.trainee, &meta)
                .map_err(|e| ServeError::new(ErrorClass::Internal, e.to_string()))?;
            (tenant.committed_runs + 1, tenant.quota)
        };

        Ok((
            AttemptReply {
                trainee: req.trainee.clone(),
                run_id,
                challenge: challenge.id.to_owned(),
                score,
                rows_in: record.rows_in,
                rows_out: record.rows_out,
                cost,
                runtime_ms,
                runs_left: quota.max_runs.saturating_sub(runs_used),
                plan_cached: source == PlanSource::Shared,
            },
            cost,
        ))
    }

    /// Full history of one trainee, straight from the store.
    pub fn history(&self, trainee: &str) -> ServeResult<HistoryReply> {
        let store = self.store.lock().expect("store poisoned");
        let state = store.trainee(trainee).ok_or_else(|| {
            ServeError::new(ErrorClass::Unknown, format!("unknown trainee {trainee:?}"))
        })?;
        let runs = state
            .runs
            .values()
            .map(|r| HistoryEntry {
                run_id: r.run_id,
                challenge: r.challenge_id.clone(),
                choices: r.choices.clone(),
                score: state.scores.get(&r.run_id).copied(),
                rows_in: r.rows_in,
                rows_out: r.rows_out,
                cost: r.indicator(Indicator::Cost),
            })
            .collect();
        Ok(HistoryReply {
            trainee: trainee.to_owned(),
            runs,
        })
    }

    /// One full run record as JSON (traces included).
    pub fn run_record(&self, trainee: &str, run_id: u64) -> ServeResult<serde_json::Value> {
        let store = self.store.lock().expect("store poisoned");
        let record = store.run(trainee, run_id).ok_or_else(|| {
            ServeError::new(
                ErrorClass::Unknown,
                format!("no run {run_id} for trainee {trainee:?}"),
            )
        })?;
        serde_json::to_value(record)
            .map_err(|e| ServeError::new(ErrorClass::Internal, e.to_string()))
    }

    /// Diff two persisted runs of one trainee.
    pub fn compare(&self, trainee: &str, a: u64, b: u64) -> ServeResult<CompareReply> {
        let store = self.store.lock().expect("store poisoned");
        let find = |id: u64| {
            store.run(trainee, id).ok_or_else(|| {
                ServeError::new(
                    ErrorClass::Unknown,
                    format!("no run {id} for trainee {trainee:?}"),
                )
            })
        };
        let (ra, rb) = (find(a)?, find(b)?);
        let diff = RunComparison::diff(ra, rb)
            .map_err(|e| ServeError::new(ErrorClass::BadRequest, e.to_string()))?;
        Ok(CompareReply {
            trainee: trainee.to_owned(),
            run_a: a,
            run_b: b,
            choice_diffs: diff.choice_diffs,
            indicator_deltas: diff
                .indicator_deltas
                .iter()
                .filter_map(|d| Some((d.indicator.clone(), d.a?, d.b?)))
                .collect(),
        })
    }

    /// Hub-side counters for the status endpoint.
    pub fn counters(&self) -> HubCounters {
        HubCounters {
            completed: self.completed.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            plans: self.plans.stats(),
            tenants: self.tenants.lock().expect("tenants poisoned").len(),
            running: self.running.lock().expect("running poisoned").len(),
        }
    }

    /// Cancel every executing attempt (drain). Returns how many were
    /// signalled. Callers then wait for the registry to empty.
    pub fn cancel_all(&self, reason: &str) -> usize {
        let running = self.running.lock().expect("running poisoned");
        for attempt in running.values() {
            attempt.control.cancel(reason);
        }
        running.len()
    }

    /// Block until no attempt is executing.
    pub fn wait_attempts_done(&self) {
        loop {
            if self.running.lock().expect("running poisoned").is_empty() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Flush and compact the store (the autosave half of shutdown: state
    /// is already WAL-durable; this folds it into a snapshot so the next
    /// open replays nothing).
    pub fn checkpoint_store(&self) -> ServeResult<()> {
        let mut store = self.store.lock().expect("store poisoned");
        store
            .compact()
            .and_then(|()| store.sync())
            .map_err(|e| ServeError::new(ErrorClass::Internal, e.to_string()))
    }
}

/// Counters [`SessionHub::counters`] reports.
#[derive(Debug, Clone, Copy)]
pub struct HubCounters {
    pub completed: u64,
    pub rejected_quota: u64,
    pub rejected_busy: u64,
    pub plans: crate::coalesce::PlanStats,
    pub tenants: usize,
    pub running: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("toreador-hub-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_req(trainee: &str, max_runs: u64) -> OpenSessionRequest {
        OpenSessionRequest {
            trainee: trainee.to_owned(),
            quota: Some(Quota {
                max_runs,
                max_rows_per_run: 400,
                max_total_cost: 1e9,
            }),
            seed: Some(11),
        }
    }

    fn attempt_req(trainee: &str, rows: usize) -> AttemptRequest {
        AttemptRequest {
            trainee: trainee.to_owned(),
            challenge: "ecomm-revenue".to_owned(),
            choices: vec!["full".into(), "batch".into()],
            rows: Some(rows),
        }
    }

    #[test]
    fn attempt_flow_commits_and_meters() {
        let dir = tmp_dir("flow");
        let hub = SessionHub::open(&dir, HubConfig::default()).unwrap();
        let info = hub.open_session(&open_req("ada", 3)).unwrap();
        assert!(!info.resumed);
        let reply = hub.attempt(&attempt_req("ada", 300)).unwrap();
        assert_eq!(reply.run_id, 1);
        assert!(reply.score > 0.0);
        assert!(reply.cost > 0.0);
        assert_eq!(reply.runs_left, 2);
        assert!(!reply.plan_cached, "first compile is the leader");
        let reply2 = hub.attempt(&attempt_req("ada", 300)).unwrap();
        assert_eq!(reply2.run_id, 2);
        assert!(reply2.plan_cached, "same spec + rows hits the cache");
        // History reflects both runs with scores.
        let h = hub.history("ada").unwrap();
        assert_eq!(h.runs.len(), 2);
        assert!(h.runs.iter().all(|r| r.score.is_some()));
        // Compare works across the persisted records.
        let cmp = hub.compare("ada", 1, 2).unwrap();
        assert_eq!(cmp.choice_diffs.len(), 0, "same choices");
        assert!(!cmp.indicator_deltas.is_empty());
        // Quota: one left, then classified rejection.
        hub.attempt(&attempt_req("ada", 300)).unwrap();
        let err = hub.attempt(&attempt_req("ada", 300)).unwrap_err();
        assert_eq!(err.class, ErrorClass::QuotaExceeded);
        assert_eq!(hub.counters().rejected_quota, 1);
        drop(hub);
        // Everything survived in the store.
        let store = SessionStore::open(&dir).unwrap();
        assert_eq!(store.trainee("ada").unwrap().runs.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn attempts_without_a_session_are_unknown() {
        let dir = tmp_dir("nosession");
        let hub = SessionHub::open(&dir, HubConfig::default()).unwrap();
        let err = hub.attempt(&attempt_req("ghost", 100)).unwrap_err();
        assert_eq!(err.class, ErrorClass::Unknown);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_choices_are_bad_requests() {
        let dir = tmp_dir("badchoice");
        let hub = SessionHub::open(&dir, HubConfig::default()).unwrap();
        hub.open_session(&open_req("ada", 5)).unwrap();
        let mut req = attempt_req("ada", 100);
        req.choices = vec!["no-such-option".into()];
        let err = hub.attempt(&req).unwrap_err();
        assert_eq!(err.class, ErrorClass::BadRequest);
        let mut req = attempt_req("ada", 100);
        req.challenge = "no-such-challenge".into();
        assert_eq!(hub.attempt(&req).unwrap_err().class, ErrorClass::Unknown);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sessions_resume_from_the_store() {
        let dir = tmp_dir("resume");
        {
            let hub = SessionHub::open(&dir, HubConfig::default()).unwrap();
            hub.open_session(&open_req("ada", 5)).unwrap();
            hub.attempt(&attempt_req("ada", 200)).unwrap();
        }
        let hub = SessionHub::open(&dir, HubConfig::default()).unwrap();
        let info = hub.open_session(&open_req("ada", 99)).unwrap();
        assert!(info.resumed);
        assert_eq!(info.quota.max_runs, 5, "persisted quota wins");
        assert_eq!(info.runs_used, 1);
        assert!(info.cost_used > 0.0);
        // Run ids continue from the persisted history.
        let reply = hub.attempt(&attempt_req("ada", 200)).unwrap();
        assert_eq!(reply.run_id, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_reservations_cannot_oversubscribe_quota() {
        use std::sync::Arc;
        let dir = tmp_dir("reserve");
        let hub = Arc::new(
            SessionHub::open(
                &dir,
                HubConfig {
                    tenant_inflight: 8,
                    ..HubConfig::default()
                },
            )
            .unwrap(),
        );
        hub.open_session(&open_req("ada", 3)).unwrap();
        let mut threads = Vec::new();
        for _ in 0..8 {
            let hub = Arc::clone(&hub);
            threads.push(std::thread::spawn(move || {
                hub.attempt(&attempt_req("ada", 150)).map(|r| r.run_id)
            }));
        }
        let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let ok: Vec<u64> = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .copied()
            .collect();
        let quota_rejected = results
            .iter()
            .filter(|r| matches!(r, Err(e) if e.class == ErrorClass::QuotaExceeded))
            .count();
        assert_eq!(
            ok.len(),
            3,
            "exactly the quota's worth succeeded: {results:?}"
        );
        assert_eq!(quota_rejected, 5);
        // No two successes share a run id.
        let mut ids = ok.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_inflight_cap_rejects_as_busy() {
        let dir = tmp_dir("busy");
        let hub = SessionHub::open(
            &dir,
            HubConfig {
                tenant_inflight: 0, // clamps to nothing admitted concurrently
                ..HubConfig::default()
            },
        )
        .unwrap();
        hub.open_session(&open_req("ada", 5)).unwrap();
        let err = hub.attempt(&attempt_req("ada", 100)).unwrap_err();
        assert_eq!(err.class, ErrorClass::Busy);
        assert_eq!(hub.counters().rejected_busy, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_the_store() {
        let dir = tmp_dir("checkpoint");
        let hub = SessionHub::open(&dir, HubConfig::default()).unwrap();
        hub.open_session(&open_req("ada", 5)).unwrap();
        hub.attempt(&attempt_req("ada", 200)).unwrap();
        hub.checkpoint_store().unwrap();
        drop(hub);
        let store = SessionStore::open(&dir).unwrap();
        assert!(store.stats().snapshot_lsn > 0, "shutdown left a snapshot");
        assert_eq!(store.trainee("ada").unwrap().runs.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
