//! The typed campaign store on top of [`DurableLog`].
//!
//! A [`LabStore`] materialises, per trainee, one **session meta** record
//! (quota, seed, cumulative cost — whatever the caller's `M` carries),
//! every **run record** keyed by `(trainee, run_id)`, and every **attempt
//! score**. Each mutation is one WAL record (JSON envelope, CRC-framed by
//! the log) written and fsynced *before* the in-memory view changes; the
//! view is rebuilt on open by applying snapshot-then-tail through the same
//! code path live writes use, so recovery and normal operation cannot
//! drift apart.
//!
//! The store is deliberately generic over the meta (`M`) and run (`R`)
//! payloads: it sits *below* the Labs crate in the dependency DAG, so the
//! Labs instantiate it with their own `SessionMeta` / `RunRecord` types
//! (and tests with tiny local ones). Payloads only need `serde`.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{DeserializeOwned, Serialize};
use serde_json::{Map, Value};

use crate::error::{Result, StoreError};
use crate::log::{DurableLog, LogConfig, LogStats, Recovery};

/// Snapshot schema version (the WAL envelope is versioned implicitly by
/// the `t` tag set).
const STATE_VERSION: u64 = 1;

/// Tuning knobs for the typed store.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Segment rotation threshold, bytes (see [`LogConfig`]).
    pub segment_bytes: u64,
    /// Automatically snapshot + compact once this many WAL records have
    /// accumulated past the last snapshot. `u64::MAX` disables.
    pub snapshot_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_bytes: 1 << 20,
            snapshot_every: 256,
        }
    }
}

/// Everything the store knows about one trainee.
#[derive(Debug, Clone, PartialEq)]
pub struct TraineeState<M, R> {
    /// Session meta — last write wins.
    pub meta: M,
    /// Run records by run id.
    pub runs: BTreeMap<u64, R>,
    /// Attempt scores by run id.
    pub scores: BTreeMap<u64, f64>,
}

/// A durable, crash-recoverable store of lab sessions, runs and scores.
pub struct LabStore<M, R> {
    log: DurableLog,
    cfg: StoreConfig,
    trainees: BTreeMap<String, TraineeState<M, R>>,
    /// Bytes truncated from a torn tail during open (0 = clean).
    recovered_torn_bytes: u64,
}

impl<M, R> LabStore<M, R>
where
    M: Serialize + DeserializeOwned + Clone,
    R: Serialize + DeserializeOwned + Clone,
{
    /// Open (or create) a store in `dir` with default tuning.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// Open (or create) a store in `dir`.
    pub fn open_with(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<Self> {
        let (log, recovery) = DurableLog::open(
            dir,
            LogConfig {
                segment_bytes: cfg.segment_bytes,
            },
        )?;
        let Recovery {
            snapshot,
            records,
            torn_bytes,
            ..
        } = recovery;
        let mut store = LabStore {
            log,
            cfg,
            trainees: BTreeMap::new(),
            recovered_torn_bytes: torn_bytes,
        };
        if let Some(state) = snapshot {
            store.trainees = decode_state(&state)?;
        }
        for (lsn, payload) in records {
            let envelope = parse_envelope(&payload)
                .map_err(|e| StoreError::Corrupt(format!("wal record {lsn}: {e}")))?;
            store
                .apply(envelope)
                .map_err(|e| StoreError::Corrupt(format!("wal record {lsn}: {e}")))?;
        }
        Ok(store)
    }

    /// Record (or overwrite) a trainee's session meta.
    pub fn put_meta(&mut self, trainee: &str, meta: &M) -> Result<()> {
        self.commit(Envelope::Meta {
            trainee: trainee.to_owned(),
            value: to_value(meta)?,
        })
    }

    /// Record one run. The trainee's meta must have been written first —
    /// the WAL guarantees every run replays against a known session.
    pub fn put_run(&mut self, trainee: &str, run_id: u64, run: &R) -> Result<()> {
        if !self.trainees.contains_key(trainee) {
            return Err(StoreError::Invalid(format!(
                "run {run_id} for trainee {trainee:?} recorded before session meta"
            )));
        }
        self.commit(Envelope::Run {
            trainee: trainee.to_owned(),
            run_id,
            value: to_value(run)?,
        })
    }

    /// Record the score of one attempt.
    pub fn put_score(&mut self, trainee: &str, run_id: u64, score: f64) -> Result<()> {
        if !self.trainees.contains_key(trainee) {
            return Err(StoreError::Invalid(format!(
                "score for trainee {trainee:?} recorded before session meta"
            )));
        }
        self.commit(Envelope::Score {
            trainee: trainee.to_owned(),
            run_id,
            score,
        })
    }

    /// All trainees, sorted by name.
    pub fn trainees(&self) -> impl Iterator<Item = (&String, &TraineeState<M, R>)> {
        self.trainees.iter()
    }

    /// One trainee's state.
    pub fn trainee(&self, name: &str) -> Option<&TraineeState<M, R>> {
        self.trainees.get(name)
    }

    /// One run record.
    pub fn run(&self, trainee: &str, run_id: u64) -> Option<&R> {
        self.trainees.get(trainee)?.runs.get(&run_id)
    }

    /// One attempt score.
    pub fn score(&self, trainee: &str, run_id: u64) -> Option<f64> {
        self.trainees.get(trainee)?.scores.get(&run_id).copied()
    }

    /// The next unused run id for a trainee (1 for a fresh trainee).
    pub fn next_run_id(&self, trainee: &str) -> u64 {
        self.trainees
            .get(trainee)
            .and_then(|t| t.runs.keys().next_back())
            .map_or(1, |last| last + 1)
    }

    /// Snapshot the full state and drop the WAL segments it covers.
    pub fn compact(&mut self) -> Result<()> {
        let state = encode_state(&self.trainees)?;
        self.log.snapshot(&state)
    }

    /// Force everything written so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.log.sync()
    }

    /// On-disk shape of the underlying log.
    pub fn stats(&self) -> LogStats {
        self.log.stats()
    }

    /// Bytes truncated from a torn WAL tail while opening (0 = clean).
    pub fn recovered_torn_bytes(&self) -> u64 {
        self.recovered_torn_bytes
    }

    /// WAL-then-apply: encode, append + fsync, then mutate the view, then
    /// maybe auto-compact.
    fn commit(&mut self, envelope: Envelope) -> Result<()> {
        let bytes = encode_envelope(&envelope)?;
        self.log.append(&bytes)?;
        self.log.sync()?;
        self.apply(envelope)?;
        if self.log.records_since_snapshot() >= self.cfg.snapshot_every {
            self.compact()?;
        }
        Ok(())
    }

    /// Apply one envelope to the in-memory view. Shared by live commits
    /// and recovery replay.
    fn apply(&mut self, envelope: Envelope) -> Result<()> {
        match envelope {
            Envelope::Meta { trainee, value } => {
                let meta: M = from_value(value)?;
                match self.trainees.get_mut(&trainee) {
                    Some(state) => state.meta = meta,
                    None => {
                        self.trainees.insert(
                            trainee,
                            TraineeState {
                                meta,
                                runs: BTreeMap::new(),
                                scores: BTreeMap::new(),
                            },
                        );
                    }
                }
            }
            Envelope::Run {
                trainee,
                run_id,
                value,
            } => {
                let run: R = from_value(value)?;
                let state = self.trainees.get_mut(&trainee).ok_or_else(|| {
                    StoreError::Invalid(format!("run {run_id} for unknown trainee {trainee:?}"))
                })?;
                state.runs.insert(run_id, run);
            }
            Envelope::Score {
                trainee,
                run_id,
                score,
            } => {
                let state = self.trainees.get_mut(&trainee).ok_or_else(|| {
                    StoreError::Invalid(format!("score for unknown trainee {trainee:?}"))
                })?;
                state.scores.insert(run_id, score);
            }
        }
        Ok(())
    }
}

/// One decoded WAL record.
enum Envelope {
    Meta {
        trainee: String,
        value: Value,
    },
    Run {
        trainee: String,
        run_id: u64,
        value: Value,
    },
    Score {
        trainee: String,
        run_id: u64,
        score: f64,
    },
}

fn encode_envelope(envelope: &Envelope) -> Result<Vec<u8>> {
    let mut obj = Map::new();
    match envelope {
        Envelope::Meta { trainee, value } => {
            obj.insert("t".to_owned(), Value::String("meta".to_owned()));
            obj.insert("trainee".to_owned(), Value::String(trainee.clone()));
            obj.insert("v".to_owned(), value.clone());
        }
        Envelope::Run {
            trainee,
            run_id,
            value,
        } => {
            obj.insert("t".to_owned(), Value::String("run".to_owned()));
            obj.insert("trainee".to_owned(), Value::String(trainee.clone()));
            obj.insert("id".to_owned(), to_value(run_id)?);
            obj.insert("v".to_owned(), value.clone());
        }
        Envelope::Score {
            trainee,
            run_id,
            score,
        } => {
            obj.insert("t".to_owned(), Value::String("score".to_owned()));
            obj.insert("trainee".to_owned(), Value::String(trainee.clone()));
            obj.insert("id".to_owned(), to_value(run_id)?);
            obj.insert("v".to_owned(), to_value(score)?);
        }
    }
    serde_json::to_string(&Value::Object(obj))
        .map(String::into_bytes)
        .map_err(|e| StoreError::Codec(e.to_string()))
}

fn parse_envelope(bytes: &[u8]) -> Result<Envelope> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| StoreError::Codec(format!("envelope is not utf-8: {e}")))?;
    let value =
        serde_json::parse(text).map_err(|e| StoreError::Codec(format!("bad envelope: {e}")))?;
    let Value::Object(mut obj) = value else {
        return Err(StoreError::Codec("envelope is not an object".to_owned()));
    };
    let tag = take_str(&mut obj, "t")?;
    let trainee = take_str(&mut obj, "trainee")?;
    let payload = obj.remove("v");
    match tag.as_str() {
        "meta" => Ok(Envelope::Meta {
            trainee,
            value: payload
                .ok_or_else(|| StoreError::Codec("meta envelope without payload".to_owned()))?,
        }),
        "run" => Ok(Envelope::Run {
            trainee,
            run_id: take_u64(&mut obj, "id")?,
            value: payload
                .ok_or_else(|| StoreError::Codec("run envelope without payload".to_owned()))?,
        }),
        "score" => Ok(Envelope::Score {
            trainee,
            run_id: take_u64(&mut obj, "id")?,
            score: payload
                .and_then(|v| v.as_f64())
                .ok_or_else(|| StoreError::Codec("score envelope without value".to_owned()))?,
        }),
        other => Err(StoreError::Codec(format!(
            "unknown envelope tag {other:?} (written by a newer store?)"
        ))),
    }
}

fn take_str(obj: &mut Map<String, Value>, key: &str) -> Result<String> {
    match obj.remove(key) {
        Some(Value::String(s)) => Ok(s),
        _ => Err(StoreError::Codec(format!("envelope field {key:?} missing"))),
    }
}

fn take_u64(obj: &mut Map<String, Value>, key: &str) -> Result<u64> {
    obj.remove(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| StoreError::Codec(format!("envelope field {key:?} missing")))
}

fn encode_state<M, R>(trainees: &BTreeMap<String, TraineeState<M, R>>) -> Result<Vec<u8>>
where
    M: Serialize,
    R: Serialize,
{
    let mut all = Map::new();
    for (name, state) in trainees {
        let mut t = Map::new();
        t.insert("meta".to_owned(), to_value(&state.meta)?);
        let mut runs = Map::new();
        for (id, run) in &state.runs {
            runs.insert(id.to_string(), to_value(run)?);
        }
        t.insert("runs".to_owned(), Value::Object(runs));
        let mut scores = Map::new();
        for (id, score) in &state.scores {
            scores.insert(id.to_string(), to_value(score)?);
        }
        t.insert("scores".to_owned(), Value::Object(scores));
        all.insert(name.clone(), Value::Object(t));
    }
    let mut root = Map::new();
    root.insert("version".to_owned(), to_value(&STATE_VERSION)?);
    root.insert("trainees".to_owned(), Value::Object(all));
    serde_json::to_string(&Value::Object(root))
        .map(String::into_bytes)
        .map_err(|e| StoreError::Codec(e.to_string()))
}

fn decode_state<M, R>(bytes: &[u8]) -> Result<BTreeMap<String, TraineeState<M, R>>>
where
    M: DeserializeOwned,
    R: DeserializeOwned,
{
    let text = std::str::from_utf8(bytes)
        .map_err(|e| StoreError::Codec(format!("snapshot is not utf-8: {e}")))?;
    let value =
        serde_json::parse(text).map_err(|e| StoreError::Codec(format!("bad snapshot: {e}")))?;
    let Value::Object(mut root) = value else {
        return Err(StoreError::Codec("snapshot is not an object".to_owned()));
    };
    let version = take_u64(&mut root, "version")?;
    if version != STATE_VERSION {
        return Err(StoreError::Codec(format!(
            "snapshot version {version} is not supported (want {STATE_VERSION})"
        )));
    }
    let Some(Value::Object(all)) = root.remove("trainees") else {
        return Err(StoreError::Codec("snapshot without trainees".to_owned()));
    };
    let mut trainees = BTreeMap::new();
    for (name, entry) in all {
        let Value::Object(mut t) = entry else {
            return Err(StoreError::Codec(format!(
                "snapshot trainee {name:?} is not an object"
            )));
        };
        let meta: M = from_value(t.remove("meta").ok_or_else(|| {
            StoreError::Codec(format!("snapshot trainee {name:?} without meta"))
        })?)?;
        let mut runs = BTreeMap::new();
        if let Some(Value::Object(entries)) = t.remove("runs") {
            for (id, run) in entries {
                let id: u64 = id.parse().map_err(|_| {
                    StoreError::Codec(format!("snapshot run id {id:?} is not a number"))
                })?;
                runs.insert(id, from_value(run)?);
            }
        }
        let mut scores = BTreeMap::new();
        if let Some(Value::Object(entries)) = t.remove("scores") {
            for (id, score) in entries {
                let id: u64 = id.parse().map_err(|_| {
                    StoreError::Codec(format!("snapshot score id {id:?} is not a number"))
                })?;
                let score = score.as_f64().ok_or_else(|| {
                    StoreError::Codec(format!("snapshot score for run {id} is not a number"))
                })?;
                scores.insert(id, score);
            }
        }
        trainees.insert(name, TraineeState { meta, runs, scores });
    }
    Ok(trainees)
}

fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    serde_json::to_value(value).map_err(|e| StoreError::Codec(e.to_string()))
}

fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    serde_json::from_value(value).map_err(|e| StoreError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::fs;
    use std::path::PathBuf;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Meta {
        seed: u64,
        cost: f64,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Run {
        challenge: String,
        rows: u64,
    }

    type Store = LabStore<Meta, Run>;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("toreador-store-typed-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn run(i: u64) -> Run {
        Run {
            challenge: "ecomm-revenue".to_owned(),
            rows: 100 * i,
        }
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let mut store = Store::open(&dir).unwrap();
            store.put_meta("ada", &Meta { seed: 7, cost: 0.0 }).unwrap();
            store.put_run("ada", 1, &run(1)).unwrap();
            store.put_score("ada", 1, 97.5).unwrap();
            store
                .put_meta(
                    "ada",
                    &Meta {
                        seed: 7,
                        cost: 12.5,
                    },
                )
                .unwrap();
            store.put_meta("bob", &Meta { seed: 3, cost: 0.0 }).unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.trainees().count(), 2);
        let ada = store.trainee("ada").unwrap();
        assert_eq!(
            ada.meta,
            Meta {
                seed: 7,
                cost: 12.5
            },
            "last meta wins"
        );
        assert_eq!(ada.runs.len(), 1);
        assert_eq!(store.run("ada", 1), Some(&run(1)));
        assert_eq!(store.score("ada", 1), Some(97.5));
        assert_eq!(store.next_run_id("ada"), 2);
        assert_eq!(store.next_run_id("carol"), 1);
        assert_eq!(store.recovered_torn_bytes(), 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn run_before_meta_is_refused() {
        let dir = tmp_dir("order");
        let mut store = Store::open(&dir).unwrap();
        let err = store.put_run("ghost", 1, &run(1)).unwrap_err();
        assert!(matches!(err, StoreError::Invalid(_)), "{err}");
        let err = store.put_score("ghost", 1, 1.0).unwrap_err();
        assert!(matches!(err, StoreError::Invalid(_)), "{err}");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_drops_segments() {
        let dir = tmp_dir("compact");
        let cfg = StoreConfig {
            segment_bytes: 256,
            snapshot_every: u64::MAX,
        };
        {
            let mut store = Store::open_with(&dir, cfg).unwrap();
            store.put_meta("ada", &Meta { seed: 1, cost: 0.0 }).unwrap();
            for i in 1..=20 {
                store.put_run("ada", i, &run(i)).unwrap();
            }
            assert!(store.stats().segments > 1);
            store.compact().unwrap();
            assert_eq!(store.stats().segments, 1);
            // Post-compaction writes land in the fresh tail.
            store.put_run("ada", 21, &run(21)).unwrap();
        }
        let store = Store::open_with(&dir, cfg).unwrap();
        assert_eq!(store.trainee("ada").unwrap().runs.len(), 21);
        assert_eq!(store.run("ada", 21), Some(&run(21)));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn auto_compaction_kicks_in() {
        let dir = tmp_dir("auto");
        let cfg = StoreConfig {
            segment_bytes: 1 << 20,
            snapshot_every: 10,
        };
        let mut store = Store::open_with(&dir, cfg).unwrap();
        store.put_meta("ada", &Meta { seed: 1, cost: 0.0 }).unwrap();
        for i in 1..=30 {
            store.put_run("ada", i, &run(i)).unwrap();
        }
        let stats = store.stats();
        assert!(
            stats.snapshot_lsn > 0,
            "auto snapshot should have happened: {stats:?}"
        );
        assert!(stats.last_lsn - stats.snapshot_lsn < 10);
        drop(store);
        let store = Store::open_with(&dir, cfg).unwrap();
        assert_eq!(store.trainee("ada").unwrap().runs.len(), 30);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_on_typed_store_loses_only_the_last_write() {
        let dir = tmp_dir("torn-typed");
        {
            let mut store = Store::open(&dir).unwrap();
            store.put_meta("ada", &Meta { seed: 1, cost: 0.0 }).unwrap();
            store.put_run("ada", 1, &run(1)).unwrap();
            store.put_run("ada", 2, &run(2)).unwrap();
        }
        // Tear the last record's frame.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "log"))
            .unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let store = Store::open(&dir).unwrap();
        assert!(store.recovered_torn_bytes() > 0);
        let ada = store.trainee("ada").unwrap();
        assert_eq!(ada.runs.len(), 1, "only the torn final run is lost");
        assert_eq!(store.run("ada", 1), Some(&run(1)));
        fs::remove_dir_all(dir).unwrap();
    }
}
