//! Deterministic seeded disk-fault injection over the [`crate::io`] seam.
//!
//! [`DiskChaos`] wraps the real backend and, per the schedule in its
//! [`DiskChaosPlan`], makes individual operations fail the way commodity
//! storage fails:
//!
//! * **EIO** — the operation errors before touching the disk;
//! * **ENOSPC** — writes start failing once a byte budget is exhausted;
//! * **torn writes** — a write persists only its first `keep` bytes and
//!   then errors, the on-disk signature of a crash mid-`write(2)`;
//! * **fsync lies** — `fsync` reports success without making anything
//!   durable, and a later [`DiskChaos::power_cut`] rolls every unsynced
//!   write back, simulating power loss on a drive with a volatile cache.
//!
//! Faults are targetable per **path class** (WAL segment, snapshot, wave,
//! page file, temp file, …) × **operation** × **ordinal** — "the 3rd
//! write to a wave file" — mirroring the `targeted:stage:partition:
//! attempt:kind` schedule syntax of the executor's `ChaosPlan`, with the
//! spec form `class:op:ordinal:fault`. Background rates (`eio_rate`) draw
//! from a seeded hash of the operation serial, so a given seed replays
//! the same fault schedule.
//!
//! Everything here injects at *our* I/O call sites: it proves the
//! recovery and error-classification paths, not the kernel's. See
//! DESIGN.md §15 for the honest limits.

use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Weak};

use crate::io::{inject, real_io, IoGuard, StorageFile, StorageIo};

/// Marker embedded in every injected error message, so tests can tell an
/// injected fault from a real one.
pub const INJECTED_MARKER: &str = "disk-chaos injected";

// ---------------------------------------------------------------------------
// Taxonomy
// ---------------------------------------------------------------------------

/// What kind of on-disk artifact a path is, derived from its file name.
/// Directory-level operations (list, create-dir, dir-fsync) classify as
/// [`PathClass::Dir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathClass {
    /// `wal-<lsn>.log`
    WalSegment,
    /// `snapshot-<lsn>.snap`
    Snapshot,
    /// `LOCK`
    Lock,
    /// `manifest.json`
    Manifest,
    /// `wave-<n>.ckpt`
    Wave,
    /// `*.pages`
    Pages,
    /// `*.tmp` (any layer's unpublished atomic write)
    Temp,
    /// A directory, for dir-level operations.
    Dir,
    /// Anything else.
    Other,
}

impl PathClass {
    /// Classify a file path by name. `.tmp` wins over every other
    /// suffix: an unpublished `wave-0001.ckpt.tmp` is a temp file.
    pub fn of(path: &Path) -> PathClass {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy()) else {
            return PathClass::Other;
        };
        if name.ends_with(".tmp") {
            PathClass::Temp
        } else if name.starts_with("wal-") && name.ends_with(".log") {
            PathClass::WalSegment
        } else if name.starts_with("snapshot-") && name.ends_with(".snap") {
            PathClass::Snapshot
        } else if name == "LOCK" {
            PathClass::Lock
        } else if name == "manifest.json" {
            PathClass::Manifest
        } else if name.starts_with("wave-") && name.ends_with(".ckpt") {
            PathClass::Wave
        } else if name.ends_with(".pages") {
            PathClass::Pages
        } else {
            PathClass::Other
        }
    }

    fn parse(s: &str) -> Option<PathClass> {
        Some(match s {
            "wal" => PathClass::WalSegment,
            "snapshot" => PathClass::Snapshot,
            "lock" => PathClass::Lock,
            "manifest" => PathClass::Manifest,
            "wave" => PathClass::Wave,
            "pages" => PathClass::Pages,
            "tmp" => PathClass::Temp,
            "dir" => PathClass::Dir,
            "other" => PathClass::Other,
            _ => return None,
        })
    }

    /// The spec-syntax name of the class.
    pub fn name(&self) -> &'static str {
        match self {
            PathClass::WalSegment => "wal",
            PathClass::Snapshot => "snapshot",
            PathClass::Lock => "lock",
            PathClass::Manifest => "manifest",
            PathClass::Wave => "wave",
            PathClass::Pages => "pages",
            PathClass::Temp => "tmp",
            PathClass::Dir => "dir",
            PathClass::Other => "other",
        }
    }
}

/// The I/O operations the injector can intercept. `set_len` counts as a
/// write; `create_dir_all` as a create on the directory class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    Create,
    Open,
    Read,
    Write,
    Sync,
    Rename,
    Remove,
    List,
    SyncDir,
}

impl IoOp {
    fn parse(s: &str) -> Option<IoOp> {
        Some(match s {
            "create" => IoOp::Create,
            "open" => IoOp::Open,
            "read" => IoOp::Read,
            "write" => IoOp::Write,
            "sync" => IoOp::Sync,
            "rename" => IoOp::Rename,
            "remove" => IoOp::Remove,
            "list" => IoOp::List,
            "syncdir" => IoOp::SyncDir,
            _ => return None,
        })
    }

    fn name(&self) -> &'static str {
        match self {
            IoOp::Create => "create",
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Rename => "rename",
            IoOp::Remove => "remove",
            IoOp::List => "list",
            IoOp::SyncDir => "syncdir",
        }
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Fail the operation outright.
    Eio,
    /// Fail a write as if the volume were full.
    Enospc,
    /// Persist only the first `keep` bytes of the write, then fail —
    /// a short/torn write at an arbitrary byte offset.
    Torn { keep: u64 },
    /// Report fsync success without making anything durable; the data is
    /// lost on the next [`DiskChaos::power_cut`].
    FsyncLie,
}

impl DiskFault {
    fn describe(&self) -> String {
        match self {
            DiskFault::Eio => "EIO".to_owned(),
            DiskFault::Enospc => "ENOSPC".to_owned(),
            DiskFault::Torn { keep } => format!("torn write (kept {keep} bytes)"),
            DiskFault::FsyncLie => "fsync lie".to_owned(),
        }
    }
}

/// A scheduled fault: the `ordinal`-th `op` on a path of `class` (or any
/// class when `class` is `None`) fails with `fault`. Ordinals count from
/// zero per (class, op) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskTarget {
    pub class: Option<PathClass>,
    pub op: IoOp,
    pub ordinal: u64,
    pub fault: DiskFault,
}

impl DiskTarget {
    /// Parse `class:op:ordinal:fault`, e.g. `wal:write:3:torn@12`,
    /// `wave:rename:0:eio`, `any:sync:1:fsynclie` — the disk-side mirror
    /// of the executor's `targeted:stage:partition:attempt:kind` syntax.
    pub fn parse(spec: &str) -> Result<DiskTarget, String> {
        let bad = || format!("bad disk fault spec {spec:?} (want class:op:ordinal:fault)");
        let mut parts = spec.split(':');
        let class_s = parts.next().ok_or_else(bad)?;
        let class = if class_s == "any" {
            None
        } else {
            Some(PathClass::parse(class_s).ok_or_else(|| {
                format!("unknown path class {class_s:?} (wal|snapshot|lock|manifest|wave|pages|tmp|dir|any)")
            })?)
        };
        let op_s = parts.next().ok_or_else(bad)?;
        let op = IoOp::parse(op_s).ok_or_else(|| {
            format!(
                "unknown io op {op_s:?} (create|open|read|write|sync|rename|remove|list|syncdir)"
            )
        })?;
        let ordinal: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let fault_s = parts.next().ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        let fault = match fault_s {
            "eio" => DiskFault::Eio,
            "enospc" => DiskFault::Enospc,
            "fsynclie" => DiskFault::FsyncLie,
            other => match other.strip_prefix("torn@") {
                Some(k) => DiskFault::Torn {
                    keep: k.parse().map_err(|_| bad())?,
                },
                None => {
                    return Err(format!(
                        "unknown disk fault {fault_s:?} (eio|enospc|torn@K|fsynclie)"
                    ))
                }
            },
        };
        Ok(DiskTarget {
            class,
            op,
            ordinal,
            fault,
        })
    }
}

/// The full fault schedule for one injector.
#[derive(Debug, Clone, Default)]
pub struct DiskChaosPlan {
    /// Seed for the background-rate draws.
    pub seed: u64,
    /// Probability that any intercepted read/write/sync fails with EIO.
    pub eio_rate: f64,
    /// Writes start failing with ENOSPC once this many bytes have been
    /// written through the injector.
    pub enospc_after_bytes: Option<u64>,
    /// When true, every fsync lies (reports success, syncs nothing) —
    /// pair with [`DiskChaos::power_cut`] to model power loss.
    pub fsync_lies: bool,
    /// Scheduled point faults.
    pub targeted: Vec<DiskTarget>,
}

impl DiskChaosPlan {
    /// A plan with only scheduled faults.
    pub fn targeted(targets: Vec<DiskTarget>) -> DiskChaosPlan {
        DiskChaosPlan {
            targeted: targets,
            ..DiskChaosPlan::default()
        }
    }

    /// A background EIO rate with no point faults.
    pub fn flaky(seed: u64, eio_rate: f64) -> DiskChaosPlan {
        DiskChaosPlan {
            seed,
            eio_rate: eio_rate.clamp(0.0, 1.0),
            ..DiskChaosPlan::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic draws (SplitMix64 finaliser, as in the executor's fault
// plan — re-implemented here because `store` sits below `dataflow`).
// ---------------------------------------------------------------------------

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn uniform(seed: u64, serial: u64) -> f64 {
    (mix(seed ^ mix(serial)) >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// The injector
// ---------------------------------------------------------------------------

/// Rolled-back state for one file, enabling `power_cut`.
#[derive(Debug, Default)]
struct Shadow {
    /// The file did not exist at the last real sync (it was created and
    /// never fsynced): a power cut removes it.
    created_unsynced: bool,
    /// Undo records for writes since the last real sync, oldest first.
    undo: Vec<UndoRecord>,
}

#[derive(Debug)]
struct UndoRecord {
    offset: u64,
    /// Bytes previously at `[offset, offset + old.len())`.
    old: Vec<u8>,
    /// File length before the write.
    old_len: u64,
}

#[derive(Debug, Default)]
struct ChaosState {
    /// Per-(class, op) ordinal counters for targeted faults.
    counters: HashMap<(PathClass, IoOp), u64>,
    /// Serial number of intercepted operations, for rate draws.
    serial: u64,
    /// Bytes successfully written through the injector (ENOSPC budget).
    bytes_written: u64,
    /// Faults injected so far.
    faults: u64,
    /// Per-path unsynced-write shadows, for `power_cut`.
    shadows: HashMap<PathBuf, Shadow>,
    /// When false, the injector passes everything through (post-mortem
    /// verification mode).
    armed: bool,
}

/// The seeded disk-fault injector: a [`StorageIo`] that wraps the real
/// backend. Register it over a directory prefix with
/// [`DiskChaos::register`]; keep the returned `Arc` to disarm it, count
/// injected faults, or pull the power.
#[derive(Debug)]
pub struct DiskChaos {
    plan: DiskChaosPlan,
    inner: Arc<dyn StorageIo>,
    state: Mutex<ChaosState>,
    /// Self-reference so opened files can hold the injector alive.
    me: Weak<DiskChaos>,
}

impl DiskChaos {
    /// Build an injector for `plan` over the real backend.
    pub fn new(plan: DiskChaosPlan) -> Arc<DiskChaos> {
        Arc::new_cyclic(|me| DiskChaos {
            plan,
            inner: real_io(),
            state: Mutex::new(ChaosState {
                armed: true,
                ..ChaosState::default()
            }),
            me: me.clone(),
        })
    }

    /// Build the injector and route every path under `prefix` through it
    /// until the guard drops.
    pub fn register(prefix: impl Into<PathBuf>, plan: DiskChaosPlan) -> (Arc<DiskChaos>, IoGuard) {
        let chaos = DiskChaos::new(plan);
        let guard = inject(prefix, chaos.clone() as Arc<dyn StorageIo>);
        (chaos, guard)
    }

    /// Stop injecting (pass every operation through). Shadows are kept:
    /// a later [`DiskChaos::power_cut`] still rolls back writes that were
    /// never truly synced.
    pub fn disarm(&self) {
        self.state.lock().unwrap().armed = false;
    }

    /// Resume injecting.
    pub fn arm(&self) {
        self.state.lock().unwrap().armed = true;
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().unwrap().faults
    }

    /// Simulate power loss: every write acknowledged since the last
    /// *real* sync is rolled back (contents and length restored), and
    /// files created but never synced are removed. Call after running a
    /// workload under `fsync_lies` and before reopening the layer to
    /// check that recovery still finds a consistent prefix.
    ///
    /// Limit: rename/dir-entry ordering is not rolled back — the model
    /// covers data-page loss, the common volatile-cache failure, not
    /// journal reordering (see DESIGN.md §15).
    pub fn power_cut(&self) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let shadows = std::mem::take(&mut state.shadows);
        drop(state);
        for (path, shadow) in shadows {
            if shadow.created_unsynced {
                let _ = self.inner.remove_file(&path);
                continue;
            }
            if shadow.undo.is_empty() {
                continue;
            }
            let Ok(file) = self.inner.open_rw(&path) else {
                continue; // already removed by the workload
            };
            for rec in shadow.undo.iter().rev() {
                file.set_len(rec.old_len)?;
                if !rec.old.is_empty() {
                    file.write_all_at(rec.offset, &rec.old)?;
                }
            }
            file.sync_all()?;
        }
        Ok(())
    }

    /// Decide the fate of one intercepted operation. Counts the ordinal
    /// even when disarmed, so schedules line up with operation counts.
    fn decide(&self, class: PathClass, op: IoOp) -> Option<DiskFault> {
        let mut state = self.state.lock().unwrap();
        let ordinal = {
            let c = state.counters.entry((class, op)).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        let serial = state.serial;
        state.serial += 1;
        if !state.armed {
            return None;
        }
        for t in &self.plan.targeted {
            if t.op == op && t.ordinal == ordinal && t.class.map_or(true, |c| c == class) {
                state.faults += 1;
                return Some(t.fault);
            }
        }
        if op == IoOp::Write {
            if let Some(limit) = self.plan.enospc_after_bytes {
                if state.bytes_written >= limit {
                    state.faults += 1;
                    return Some(DiskFault::Enospc);
                }
            }
        }
        if self.plan.fsync_lies && matches!(op, IoOp::Sync | IoOp::SyncDir) {
            state.faults += 1;
            return Some(DiskFault::FsyncLie);
        }
        if self.plan.eio_rate > 0.0
            && matches!(op, IoOp::Read | IoOp::Write | IoOp::Sync)
            && uniform(self.plan.seed, serial) < self.plan.eio_rate
        {
            state.faults += 1;
            return Some(DiskFault::Eio);
        }
        None
    }

    fn injected_err(&self, fault: DiskFault, op: IoOp, path: &Path) -> io::Error {
        io::Error::other(format!(
            "{INJECTED_MARKER} {} during {} of {}",
            fault.describe(),
            op.name(),
            path.display()
        ))
    }

    fn note_bytes(&self, n: u64) {
        self.state.lock().unwrap().bytes_written += n;
    }

    fn note_created(&self, path: &Path) {
        let mut state = self.state.lock().unwrap();
        state.shadows.insert(
            path.to_owned(),
            Shadow {
                created_unsynced: true,
                undo: Vec::new(),
            },
        );
    }

    /// Record the pre-image of `[offset, offset + len)` of `path` before
    /// it is overwritten, so `power_cut` can restore it.
    fn note_write(&self, path: &Path, file: &dyn StorageFile, offset: u64, len: u64) {
        let old_len = file.len().unwrap_or(0);
        let overlap_end = old_len.min(offset + len);
        let mut old = Vec::new();
        if overlap_end > offset {
            old = vec![0u8; (overlap_end - offset) as usize];
            if file.read_exact_at(offset, &mut old).is_err() {
                old.clear();
            }
        }
        let mut state = self.state.lock().unwrap();
        let shadow = state.shadows.entry(path.to_owned()).or_default();
        if !shadow.created_unsynced {
            shadow.undo.push(UndoRecord {
                offset,
                old,
                old_len,
            });
        }
    }

    /// A real sync happened on `path`: its writes are durable, drop the
    /// rollback state.
    fn note_synced(&self, path: &Path) {
        let mut state = self.state.lock().unwrap();
        if let Some(shadow) = state.shadows.get_mut(path) {
            shadow.created_unsynced = false;
            shadow.undo.clear();
        }
    }

    fn note_renamed(&self, from: &Path, to: &Path) {
        let mut state = self.state.lock().unwrap();
        if let Some(shadow) = state.shadows.remove(from) {
            state.shadows.insert(to.to_owned(), shadow);
        }
    }

    fn note_removed(&self, path: &Path) {
        self.state.lock().unwrap().shadows.remove(path);
    }
}

// ---------------------------------------------------------------------------
// StorageIo / StorageFile plumbing
// ---------------------------------------------------------------------------

impl StorageIo for DiskChaos {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let class = PathClass::of(path);
        if let Some(f) = self.decide(class, IoOp::Create) {
            return Err(self.injected_err(f, IoOp::Create, path));
        }
        let existed = self.inner.exists(path);
        let inner = self.inner.create(path)?;
        if !existed {
            self.note_created(path);
        }
        Ok(Box::new(ChaosFile {
            chaos: self.arc(),
            class,
            path: path.to_owned(),
            inner,
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let class = PathClass::of(path);
        if let Some(f) = self.decide(class, IoOp::Open) {
            return Err(self.injected_err(f, IoOp::Open, path));
        }
        let inner = self.inner.open_rw(path)?;
        Ok(Box::new(ChaosFile {
            chaos: self.arc(),
            class,
            path: path.to_owned(),
            inner,
        }))
    }

    fn open_rw_create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let class = PathClass::of(path);
        if let Some(f) = self.decide(class, IoOp::Open) {
            return Err(self.injected_err(f, IoOp::Open, path));
        }
        let existed = self.inner.exists(path);
        let inner = self.inner.open_rw_create(path)?;
        if !existed {
            self.note_created(path);
        }
        Ok(Box::new(ChaosFile {
            chaos: self.arc(),
            class,
            path: path.to_owned(),
            inner,
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let class = PathClass::of(path);
        if let Some(f) = self.decide(class, IoOp::Open) {
            return Err(self.injected_err(f, IoOp::Open, path));
        }
        let inner = self.inner.open_read(path)?;
        Ok(Box::new(ChaosFile {
            chaos: self.arc(),
            class,
            path: path.to_owned(),
            inner,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let class = PathClass::of(path);
        if let Some(f) = self.decide(class, IoOp::Read) {
            return Err(self.injected_err(f, IoOp::Read, path));
        }
        self.inner.read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        if let Some(f) = self.decide(PathClass::Dir, IoOp::List) {
            return Err(self.injected_err(f, IoOp::List, dir));
        }
        self.inner.list_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        if let Some(f) = self.decide(PathClass::Dir, IoOp::Create) {
            return Err(self.injected_err(f, IoOp::Create, dir));
        }
        self.inner.create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let class = PathClass::of(path);
        if let Some(f) = self.decide(class, IoOp::Remove) {
            return Err(self.injected_err(f, IoOp::Remove, path));
        }
        self.inner.remove_file(path)?;
        self.note_removed(path);
        Ok(())
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        if let Some(f) = self.decide(PathClass::Dir, IoOp::Remove) {
            return Err(self.injected_err(f, IoOp::Remove, dir));
        }
        self.inner.remove_dir_all(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        // Classify by the destination: "fault the wave publish" targets
        // the rename that installs wave-0001.ckpt, not its .tmp source.
        let class = PathClass::of(to);
        if let Some(f) = self.decide(class, IoOp::Rename) {
            return Err(self.injected_err(f, IoOp::Rename, to));
        }
        self.inner.rename(from, to)?;
        self.note_renamed(from, to);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.decide(PathClass::Dir, IoOp::SyncDir) {
            Some(DiskFault::FsyncLie) => Ok(()), // the lie
            Some(f) => Err(self.injected_err(f, IoOp::SyncDir, dir)),
            None => self.inner.sync_dir(dir),
        }
    }
}

impl DiskChaos {
    /// The owning `Arc`, so file handles keep the injector alive.
    fn arc(&self) -> Arc<DiskChaos> {
        self.me.upgrade().expect("DiskChaos is always Arc-owned")
    }
}

/// One chaos-wrapped open file.
#[derive(Debug)]
struct ChaosFile {
    chaos: Arc<DiskChaos>,
    class: PathClass,
    path: PathBuf,
    inner: Box<dyn StorageFile>,
}

impl StorageFile for ChaosFile {
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        if let Some(f) = self.chaos.decide(self.class, IoOp::Read) {
            return Err(self.chaos.injected_err(f, IoOp::Read, &self.path));
        }
        self.inner.read_exact_at(offset, buf)
    }

    fn write_all_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        match self.chaos.decide(self.class, IoOp::Write) {
            Some(DiskFault::Torn { keep }) => {
                let k = (keep.min(data.len() as u64)) as usize;
                if k > 0 {
                    self.chaos
                        .note_write(&self.path, self.inner.as_ref(), offset, k as u64);
                    self.inner.write_all_at(offset, &data[..k])?;
                    self.chaos.note_bytes(k as u64);
                }
                Err(self
                    .chaos
                    .injected_err(DiskFault::Torn { keep }, IoOp::Write, &self.path))
            }
            Some(f) => Err(self.chaos.injected_err(f, IoOp::Write, &self.path)),
            None => {
                self.chaos
                    .note_write(&self.path, self.inner.as_ref(), offset, data.len() as u64);
                self.inner.write_all_at(offset, data)?;
                self.chaos.note_bytes(data.len() as u64);
                Ok(())
            }
        }
    }

    fn sync_data(&self) -> io::Result<()> {
        match self.chaos.decide(self.class, IoOp::Sync) {
            Some(DiskFault::FsyncLie) => Ok(()), // acknowledged, not durable
            Some(f) => Err(self.chaos.injected_err(f, IoOp::Sync, &self.path)),
            None => {
                self.inner.sync_data()?;
                self.chaos.note_synced(&self.path);
                Ok(())
            }
        }
    }

    fn sync_all(&self) -> io::Result<()> {
        match self.chaos.decide(self.class, IoOp::Sync) {
            Some(DiskFault::FsyncLie) => Ok(()),
            Some(f) => Err(self.chaos.injected_err(f, IoOp::Sync, &self.path)),
            None => {
                self.inner.sync_all()?;
                self.chaos.note_synced(&self.path);
                Ok(())
            }
        }
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        // Truncation is a write for scheduling purposes.
        if let Some(f) = self.chaos.decide(self.class, IoOp::Write) {
            return Err(self.chaos.injected_err(f, IoOp::Write, &self.path));
        }
        let old_len = self.inner.len().unwrap_or(0);
        if len < old_len {
            // Preserve the truncated tail for power_cut.
            self.chaos
                .note_write(&self.path, self.inner.as_ref(), len, old_len - len);
        }
        self.inner.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn as_file(&self) -> Option<&File> {
        self.inner.as_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("toreador-chaos-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn path_classes_from_names() {
        assert_eq!(
            PathClass::of(Path::new("/s/wal-00000000000000000001.log")),
            PathClass::WalSegment
        );
        assert_eq!(
            PathClass::of(Path::new("/s/snapshot-00000000000000000009.snap")),
            PathClass::Snapshot
        );
        assert_eq!(PathClass::of(Path::new("/s/LOCK")), PathClass::Lock);
        assert_eq!(
            PathClass::of(Path::new("/c/manifest.json")),
            PathClass::Manifest
        );
        assert_eq!(
            PathClass::of(Path::new("/c/wave-0001.ckpt")),
            PathClass::Wave
        );
        assert_eq!(
            PathClass::of(Path::new("/p/run-000001.pages")),
            PathClass::Pages
        );
        // .tmp wins over the published suffix.
        assert_eq!(
            PathClass::of(Path::new("/c/wave-0001.ckpt.tmp")),
            PathClass::Temp
        );
        assert_eq!(PathClass::of(Path::new("/x/notes.txt")), PathClass::Other);
    }

    #[test]
    fn target_spec_round_trips() {
        let t = DiskTarget::parse("wal:write:3:torn@12").unwrap();
        assert_eq!(t.class, Some(PathClass::WalSegment));
        assert_eq!(t.op, IoOp::Write);
        assert_eq!(t.ordinal, 3);
        assert_eq!(t.fault, DiskFault::Torn { keep: 12 });
        let t = DiskTarget::parse("any:sync:0:fsynclie").unwrap();
        assert_eq!(t.class, None);
        assert_eq!(t.fault, DiskFault::FsyncLie);
        assert!(DiskTarget::parse("wal:write:x:eio").is_err());
        assert!(DiskTarget::parse("wal:write:1:melt").is_err());
        assert!(DiskTarget::parse("blob:write:1:eio").is_err());
    }

    #[test]
    fn targeted_write_fails_at_exactly_its_ordinal() {
        let dir = tmp_dir("ordinal");
        let plan = DiskChaosPlan::targeted(vec![DiskTarget::parse("other:write:1:eio").unwrap()]);
        let (chaos, _guard) = DiskChaos::register(&dir, plan);
        let io = crate::io::io_for(&dir.join("f"));
        let f = io.create(&dir.join("f")).unwrap();
        f.write_all_at(0, b"first").unwrap();
        let err = f.write_all_at(5, b"second").unwrap_err();
        assert!(err.to_string().contains(INJECTED_MARKER), "{err}");
        assert!(err.to_string().contains("EIO"), "{err}");
        f.write_all_at(5, b"third").unwrap();
        assert_eq!(chaos.faults_injected(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_a_prefix_then_errors() {
        let dir = tmp_dir("torn");
        let plan =
            DiskChaosPlan::targeted(vec![DiskTarget::parse("other:write:0:torn@3").unwrap()]);
        let (_chaos, _guard) = DiskChaos::register(&dir, plan);
        let io = crate::io::io_for(&dir.join("f"));
        let f = io.create(&dir.join("f")).unwrap();
        let err = f.write_all_at(0, b"abcdef").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert_eq!(f.len().unwrap(), 3);
        let mut buf = [0u8; 3];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_budget_halts_writes() {
        let dir = tmp_dir("enospc");
        let plan = DiskChaosPlan {
            enospc_after_bytes: Some(8),
            ..DiskChaosPlan::default()
        };
        let (_chaos, _guard) = DiskChaos::register(&dir, plan);
        let io = crate::io::io_for(&dir.join("f"));
        let f = io.create(&dir.join("f")).unwrap();
        f.write_all_at(0, b"12345678").unwrap();
        let err = f.write_all_at(8, b"x").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_lie_then_power_cut_loses_unsynced_writes_only() {
        let dir = tmp_dir("powercut");
        let path = dir.join("f");
        // Phase 1 (no chaos): write + really sync a prefix.
        {
            let io = crate::io::real_io();
            let f = io.create(&path).unwrap();
            f.write_all_at(0, b"durable!").unwrap();
            f.sync_all().unwrap();
        }
        // Phase 2: chaos with lying fsyncs; overwrite and extend.
        let plan = DiskChaosPlan {
            fsync_lies: true,
            ..DiskChaosPlan::default()
        };
        let (chaos, _guard) = DiskChaos::register(&dir, plan);
        {
            let io = crate::io::io_for(&path);
            let f = io.open_rw(&path).unwrap();
            f.write_all_at(0, b"clobber!").unwrap();
            f.write_all_at(8, b"-extended").unwrap();
            f.sync_all().unwrap(); // lie: reports Ok, durable nothing
        }
        // Also create a brand-new file that is never really synced.
        {
            let io = crate::io::io_for(&dir.join("ghost"));
            let f = io.create(&dir.join("ghost")).unwrap();
            f.write_all_at(0, b"gone").unwrap();
            f.sync_all().unwrap(); // lie
        }
        chaos.power_cut().unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"durable!");
        assert!(!dir.join("ghost").exists(), "unsynced creation is lost");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_rates_are_deterministic() {
        let a: Vec<bool> = (0..200).map(|s| uniform(42, s) < 0.2).collect();
        let b: Vec<bool> = (0..200).map(|s| uniform(42, s) < 0.2).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "some ops fault at 20%");
        assert!(a.iter().any(|&x| !x), "some ops pass at 20%");
        let c: Vec<bool> = (0..200).map(|s| uniform(43, s) < 0.2).collect();
        assert_ne!(a, c, "different seeds, different schedule");
    }

    #[test]
    fn disarm_stops_injection() {
        let dir = tmp_dir("disarm");
        let (chaos, _guard) = DiskChaos::register(&dir, DiskChaosPlan::flaky(7, 1.0));
        let io = crate::io::io_for(&dir.join("f"));
        let f = io.create(&dir.join("f")).unwrap();
        assert!(f.write_all_at(0, b"x").is_err(), "rate 1.0 faults all");
        chaos.disarm();
        f.write_all_at(0, b"x").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
