//! Offline integrity scrubbing for a store directory.
//!
//! [`scan_store_dir`] CRC-verifies every WAL segment frame and snapshot
//! in a directory and assigns each artifact a typed [`Verdict`]:
//!
//! * **Clean** — every frame verifies;
//! * **TruncatableTail** — the final segment ends in a torn record, the
//!   signature of a crash mid-append; recovery (and `--repair`) truncate
//!   it without losing anything that was ever durable;
//! * **Orphan** — the artifact holds no durable state (an unpublished
//!   `.tmp`, a snapshot superseded by a newer valid one, a torn-header
//!   final segment, an unreadable snapshot whose range the WAL chain
//!   still covers); removing it is proven-safe;
//! * **Corrupt** — interior damage (bad magic, mid-chain checksum
//!   failure, a gap in the segment chain, an unreadable snapshot the WAL
//!   cannot re-derive). Nothing here is auto-repairable: fsck refuses to
//!   guess, exactly as recovery refuses to silently drop history.
//!
//! [`repair`] applies only the proven-safe actions — torn-tail
//! truncation and orphan removal. The verdict taxonomy is deliberately
//! the same decision table as [`crate::log::DurableLog::open`]: fsck
//! never "fixes" anything recovery would not have done itself, it just
//! does it offline and reports it.

use std::path::{Path, PathBuf};

use crate::error::{storage, Result};
use crate::io::io_for;
use crate::log::{parse_name, read_frame, scan_segment_bytes, scan_snapshot_bytes};

/// The typed per-artifact outcome of a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every frame verified.
    Clean,
    /// A torn final record: `good_bytes` verify, `torn_bytes` after them
    /// do not. Truncating to `good_bytes` is proven-safe.
    TruncatableTail { good_bytes: u64, torn_bytes: u64 },
    /// Holds no durable state; removal is proven-safe.
    Orphan { detail: String },
    /// Damaged in a way no safe action can repair.
    Corrupt { detail: String },
}

impl Verdict {
    pub fn is_clean(&self) -> bool {
        matches!(self, Verdict::Clean)
    }

    pub fn is_corrupt(&self) -> bool {
        matches!(self, Verdict::Corrupt { .. })
    }

    /// Short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::TruncatableTail { .. } => "truncatable-tail",
            Verdict::Orphan { .. } => "orphan",
            Verdict::Corrupt { .. } => "corrupt",
        }
    }

    /// The detail text, when the verdict carries one.
    pub fn detail(&self) -> Option<String> {
        match self {
            Verdict::Clean => None,
            Verdict::TruncatableTail {
                good_bytes,
                torn_bytes,
            } => Some(format!("{good_bytes} good bytes, {torn_bytes} torn")),
            Verdict::Orphan { detail } | Verdict::Corrupt { detail } => Some(detail.clone()),
        }
    }
}

/// One scanned artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub path: PathBuf,
    /// What the artifact is: `"wal-segment"`, `"snapshot"`, `"lock"`,
    /// `"temp"`, or the synthetic `"wal-chain"` for directory-level chain
    /// damage.
    pub kind: &'static str,
    pub verdict: Verdict,
}

/// Scan the store artifacts in `dir` (non-recursive): WAL segments,
/// snapshots, the LOCK file and `.tmp` leftovers. Unknown files are
/// ignored — fsck judges only what it understands.
pub fn scan_store_dir(dir: &Path) -> Result<Vec<Artifact>> {
    let io = io_for(dir);
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
    let mut out: Vec<Artifact> = Vec::new();
    for path in io
        .list_dir(dir)
        .map_err(|e| storage("list store dir", dir, e))?
    {
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            out.push(Artifact {
                path,
                kind: "temp",
                verdict: Verdict::Orphan {
                    detail: "unpublished atomic write".to_owned(),
                },
            });
        } else if let Some(lsn) = parse_name(&name, "wal-", ".log") {
            segments.push((lsn, path));
        } else if let Some(lsn) = parse_name(&name, "snapshot-", ".snap") {
            snapshots.push((lsn, path));
        } else if name == crate::lock::LOCK_FILE {
            out.push(Artifact {
                path,
                kind: "lock",
                verdict: Verdict::Clean,
            });
        }
    }

    // Pass 1: which snapshots are readable, and which readable one is
    // newest — the anchor every chain judgement hangs off.
    let mut snapshot_valid: Vec<(u64, PathBuf, bool)> = Vec::new();
    for (lsn, path) in &snapshots {
        let valid = match io.read(path) {
            Ok(bytes) => scan_snapshot_bytes(&bytes, *lsn).is_some(),
            Err(e) => return Err(storage("read snapshot", path, e)),
        };
        snapshot_valid.push((*lsn, path.clone(), valid));
    }
    let newest_valid_lsn = snapshot_valid
        .iter()
        .filter(|(_, _, valid)| *valid)
        .map(|(lsn, _, _)| *lsn)
        .max()
        .unwrap_or(0);

    // Pass 2: walk the segment chain from the anchor, validating every
    // frame. `max_contiguous` is the highest LSN provably replayable —
    // the measure of what an unreadable snapshot can still be re-derived
    // from.
    segments.sort();
    let mut remaining: Vec<(u64, PathBuf)> = Vec::new();
    for (i, (first, path)) in segments.iter().enumerate() {
        let covered = segments
            .get(i + 1)
            .is_some_and(|(next, _)| *next <= newest_valid_lsn + 1);
        if covered {
            out.push(Artifact {
                path: path.clone(),
                kind: "wal-segment",
                verdict: Verdict::Orphan {
                    detail: format!("fully covered by snapshot at lsn {newest_valid_lsn}"),
                },
            });
        } else {
            remaining.push((*first, path.clone()));
        }
    }
    let mut expected_first = newest_valid_lsn + 1;
    let mut max_contiguous = newest_valid_lsn;
    let mut chain_intact = true;
    let last_index = remaining.len().wrapping_sub(1);
    for (i, (first, path)) in remaining.iter().enumerate() {
        if chain_intact && *first > expected_first {
            out.push(Artifact {
                path: dir.to_owned(),
                kind: "wal-chain",
                verdict: Verdict::Corrupt {
                    detail: format!(
                        "gap in wal chain: expected a segment covering lsn {expected_first}, \
                         next segment starts at {first}"
                    ),
                },
            });
            chain_intact = false;
        }
        let is_last = i == last_index;
        let bytes = io
            .read(path)
            .map_err(|e| storage("read segment", path, e))?;
        let verdict = match scan_segment_bytes(&bytes, path, *first, is_last) {
            Err(e) => Verdict::Corrupt {
                detail: e.to_string(),
            },
            Ok(None) => Verdict::Orphan {
                detail: "torn header on the final segment; holds no durable records".to_owned(),
            },
            Ok(Some(scan)) => {
                if chain_intact {
                    expected_first = first + scan.record_count;
                    max_contiguous = expected_first - 1;
                }
                if scan.torn_bytes > 0 {
                    // Recovery truncates here; fsck looks one step
                    // further. A crash mid-append leaves nothing valid
                    // after the tear, so a CRC-clean frame resuming
                    // later proves interior damage (a flipped bit, not
                    // a torn write) — truncating would silently drop
                    // the durable records behind it.
                    if frames_resume_after(&bytes, scan.good_bytes as usize) {
                        Verdict::Corrupt {
                            detail: format!(
                                "damaged record at offset {} with valid frames after it: \
                                 interior corruption, not a torn tail",
                                scan.good_bytes
                            ),
                        }
                    } else {
                        Verdict::TruncatableTail {
                            good_bytes: scan.good_bytes,
                            torn_bytes: scan.torn_bytes,
                        }
                    }
                } else {
                    Verdict::Clean
                }
            }
        };
        if verdict.is_corrupt() {
            chain_intact = false;
        }
        out.push(Artifact {
            path: path.clone(),
            kind: "wal-segment",
            verdict,
        });
    }

    // Pass 3: snapshot verdicts. The newest valid one is clean; anything
    // older is superseded (orphan); an unreadable snapshot is an orphan
    // only if the chain provably re-derives its range, else corrupt.
    for (lsn, path, valid) in snapshot_valid {
        let verdict = if valid {
            if lsn == newest_valid_lsn {
                Verdict::Clean
            } else {
                Verdict::Orphan {
                    detail: format!("superseded by snapshot at lsn {newest_valid_lsn}"),
                }
            }
        } else if lsn <= max_contiguous {
            Verdict::Orphan {
                detail: format!(
                    "unreadable, but the wal chain replays through lsn {max_contiguous}"
                ),
            }
        } else {
            Verdict::Corrupt {
                detail: format!(
                    "unreadable snapshot at lsn {lsn}; the wal chain only replays through \
                     lsn {max_contiguous}, so deleting it would lose durable state"
                ),
            }
        };
        out.push(Artifact {
            path,
            kind: "snapshot",
            verdict,
        });
    }

    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Whether any valid non-empty CRC frame parses at an offset past
/// `after`. A 1-in-2^32 chance of random bytes passing the CRC makes this
/// a reliable torn-tail vs interior-damage discriminator.
fn frames_resume_after(bytes: &[u8], after: usize) -> bool {
    let mut off = after + 1;
    while off < bytes.len() {
        if let Some((payload, _)) = read_frame(bytes, off) {
            if !payload.is_empty() {
                return true;
            }
        }
        off += 1;
    }
    false
}

/// Apply the proven-safe repair for one artifact: truncate a torn tail,
/// remove an orphan. Returns a description of the action taken, or
/// `None` when the verdict admits no action (clean or corrupt).
pub fn repair(artifact: &Artifact) -> Result<Option<String>> {
    let io = io_for(&artifact.path);
    match &artifact.verdict {
        Verdict::Clean | Verdict::Corrupt { .. } => Ok(None),
        Verdict::TruncatableTail {
            good_bytes,
            torn_bytes,
        } => {
            let file = io
                .open_rw(&artifact.path)
                .map_err(|e| storage("open for repair", &artifact.path, e))?;
            file.set_len(*good_bytes)
                .and_then(|_| file.sync_all())
                .map_err(|e| storage("truncate torn tail", &artifact.path, e))?;
            Ok(Some(format!("truncated {torn_bytes} torn bytes")))
        }
        Verdict::Orphan { .. } => {
            io.remove_file(&artifact.path)
                .map_err(|e| storage("remove orphan", &artifact.path, e))?;
            Ok(Some("removed".to_owned()))
        }
    }
}

/// Whether `dir` holds store artifacts at all (used by directory walkers
/// to decide which scanner owns a directory).
pub fn looks_like_store_dir(dir: &Path) -> bool {
    let io = io_for(dir);
    io.list_dir(dir).is_ok_and(|entries| {
        entries.iter().any(|p| {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
            name.is_some_and(|n| {
                parse_name(&n, "wal-", ".log").is_some()
                    || parse_name(&n, "snapshot-", ".snap").is_some()
                    || n == crate::lock::LOCK_FILE
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{segment_path, DurableLog, LogConfig};
    use std::fs::{self, OpenOptions};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("toreador-fsck-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_store(dir: &Path, records: usize) {
        let (mut log, _) = DurableLog::open(dir, LogConfig::default()).unwrap();
        for i in 0..records {
            log.append(format!("record-{i}").as_bytes()).unwrap();
        }
        log.sync().unwrap();
    }

    fn verdict_of<'a>(arts: &'a [Artifact], kind: &str) -> &'a Verdict {
        &arts.iter().find(|a| a.kind == kind).unwrap().verdict
    }

    #[test]
    fn clean_store_scans_clean() {
        let dir = tmp_dir("clean");
        seed_store(&dir, 10);
        let arts = scan_store_dir(&dir).unwrap();
        assert!(arts.iter().all(|a| a.verdict.is_clean()), "{arts:?}");
        assert!(arts.iter().any(|a| a.kind == "wal-segment"));
        assert!(arts.iter().any(|a| a.kind == "lock"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncatable_and_repair_restores_clean() {
        let dir = tmp_dir("torn");
        seed_store(&dir, 5);
        let seg = segment_path(&dir, 1);
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let v = verdict_of(&arts, "wal-segment");
        assert!(
            matches!(v, Verdict::TruncatableTail { torn_bytes, .. } if *torn_bytes > 0),
            "{v:?}"
        );
        for a in &arts {
            repair(a).unwrap();
        }
        let arts = scan_store_dir(&dir).unwrap();
        assert!(arts.iter().all(|a| a.verdict.is_clean()), "{arts:?}");
        // And recovery agrees: the durable prefix survives.
        let (_, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.torn_bytes, 0, "fsck already truncated the tail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_damage_is_corrupt_and_unrepairable() {
        let dir = tmp_dir("interior");
        {
            let (mut log, _) = DurableLog::open(&dir, LogConfig { segment_bytes: 96 }).unwrap();
            for i in 0..30 {
                log.append(format!("record-{i}").as_bytes()).unwrap();
            }
            log.sync().unwrap();
        }
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let k = crate::log::HEADER_LEN + crate::log::FRAME_HEADER_LEN + 1;
        bytes[k] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let bad = arts.iter().find(|a| a.path == seg).unwrap();
        assert!(bad.verdict.is_corrupt(), "{:?}", bad.verdict);
        assert!(repair(bad).unwrap().is_none(), "corruption is not repaired");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_final_segment_is_corrupt_not_truncatable() {
        let dir = tmp_dir("final-flip");
        seed_store(&dir, 8);
        // Flip one payload byte of the FIRST record in the (only, final)
        // segment: recovery would truncate everything after it, but fsck
        // sees the seven valid frames behind the flip and refuses.
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let k = crate::log::HEADER_LEN + crate::log::FRAME_HEADER_LEN + 1;
        bytes[k] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let v = verdict_of(&arts, "wal-segment");
        assert!(v.is_corrupt(), "{v:?}");
        assert!(v.detail().unwrap().contains("interior"), "{v:?}");
        // A genuine torn tail (no valid frames after) still truncates.
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let orig = fs::read(&seg).unwrap();
        let mut fixed = orig.clone();
        fixed[k] ^= 0xFF; // undo the flip, keep the torn tail
        fs::write(&seg, &fixed).unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let v = verdict_of(&arts, "wal-segment");
        assert!(matches!(v, Verdict::TruncatableTail { .. }), "{v:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chain_gap_is_a_corrupt_dir_level_artifact() {
        let dir = tmp_dir("gap");
        {
            let (mut log, _) = DurableLog::open(&dir, LogConfig { segment_bytes: 96 }).unwrap();
            for i in 0..30 {
                log.append(format!("record-{i}").as_bytes()).unwrap();
            }
            log.sync().unwrap();
        }
        let mut firsts: Vec<u64> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_name(&e.unwrap().file_name().to_string_lossy(), "wal-", ".log"))
            .collect();
        firsts.sort_unstable();
        assert!(firsts.len() > 2);
        fs::remove_file(segment_path(&dir, firsts[1])).unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let v = verdict_of(&arts, "wal-chain");
        assert!(v.is_corrupt(), "{v:?}");
        assert!(v.detail().unwrap().contains("gap"), "{v:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_newer_snapshot_is_an_orphan_when_wal_covers_it() {
        let dir = tmp_dir("snap-orphan");
        seed_store(&dir, 12);
        // A fake newer snapshot that is torn, but whose lsn (12) the wal
        // chain fully replays: deleting it is proven-safe.
        fs::write(dir.join(format!("snapshot-{:020}.snap", 12)), b"garbage").unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let v = verdict_of(&arts, "snapshot");
        assert!(matches!(v, Verdict::Orphan { .. }), "{v:?}");
        // But a torn snapshot claiming records beyond the chain is corrupt.
        fs::write(dir.join(format!("snapshot-{:020}.snap", 99)), b"garbage").unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let bad = arts
            .iter()
            .find(|a| a.path.to_string_lossy().contains("0099"))
            .unwrap();
        assert!(bad.verdict.is_corrupt(), "{:?}", bad.verdict);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_files_are_orphans_and_store_dirs_are_recognised() {
        let dir = tmp_dir("tmp");
        seed_store(&dir, 3);
        fs::write(dir.join("snapshot-00000000000000000003.snap.tmp"), b"x").unwrap();
        let arts = scan_store_dir(&dir).unwrap();
        let v = verdict_of(&arts, "temp");
        assert!(matches!(v, Verdict::Orphan { .. }), "{v:?}");
        assert!(looks_like_store_dir(&dir));
        let other = tmp_dir("not-a-store");
        fs::create_dir_all(&other).unwrap();
        assert!(!looks_like_store_dir(&other));
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&other).unwrap();
    }
}
