//! Error type for the durable store.

use std::fmt;
use std::path::Path;

/// Errors raised by the store layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// An underlying filesystem operation failed, classified: names the
    /// operation and the path so a caller (or an operator reading a log)
    /// knows exactly which artifact misbehaved. Every disk touch in the
    /// durability layers reports through this variant; the bare [`Io`]
    /// variant remains only for the blanket `From<io::Error>` conversion.
    ///
    /// [`Io`]: StoreError::Io
    Storage {
        /// The operation that failed (`"create segment"`, `"fsync wal"`, …).
        op: String,
        /// The file or directory it failed on.
        path: std::path::PathBuf,
        /// The underlying error text.
        message: String,
    },
    /// The on-disk state is damaged in a way recovery must not paper over
    /// (bad magic, a checksum failure *before* the tail, a gap in the
    /// segment chain). A torn final record is NOT corruption — recovery
    /// truncates it silently.
    Corrupt(String),
    /// A payload failed to encode or decode.
    Codec(String),
    /// The caller broke a store protocol rule (e.g. recording a run for a
    /// trainee whose session meta was never written).
    Invalid(String),
    /// Another live process holds the store directory's advisory lock. The
    /// message names the holder recorded in the `LOCK` file.
    Locked(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Storage { op, path, message } => {
                write!(f, "storage error: {op} {}: {message}", path.display())
            }
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::Codec(m) => write!(f, "store codec error: {m}"),
            StoreError::Invalid(m) => write!(f, "store misuse: {m}"),
            StoreError::Locked(m) => write!(f, "store locked: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Build a classified storage error naming the operation and the path.
pub fn storage(op: impl Into<String>, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Storage {
        op: op.into(),
        path: path.to_owned(),
        message: e.to_string(),
    }
}

/// Result alias for the store layer.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = StoreError::Corrupt("segment gap".into());
        assert!(e.to_string().contains("segment gap"));
        let e: StoreError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn storage_errors_name_op_and_path() {
        let e = storage(
            "fsync wal",
            Path::new("/store/wal-1.log"),
            std::io::Error::other("no space left on device"),
        );
        let msg = e.to_string();
        assert!(msg.contains("fsync wal"), "{msg}");
        assert!(msg.contains("/store/wal-1.log"), "{msg}");
        assert!(msg.contains("no space left"), "{msg}");
    }
}
