//! Error type for the durable store.

use std::fmt;

/// Errors raised by the store layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The on-disk state is damaged in a way recovery must not paper over
    /// (bad magic, a checksum failure *before* the tail, a gap in the
    /// segment chain). A torn final record is NOT corruption — recovery
    /// truncates it silently.
    Corrupt(String),
    /// A payload failed to encode or decode.
    Codec(String),
    /// The caller broke a store protocol rule (e.g. recording a run for a
    /// trainee whose session meta was never written).
    Invalid(String),
    /// Another live process holds the store directory's advisory lock. The
    /// message names the holder recorded in the `LOCK` file.
    Locked(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::Codec(m) => write!(f, "store codec error: {m}"),
            StoreError::Invalid(m) => write!(f, "store misuse: {m}"),
            StoreError::Locked(m) => write!(f, "store locked: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for the store layer.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = StoreError::Corrupt("segment gap".into());
        assert!(e.to_string().contains("segment gap"));
        let e: StoreError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
