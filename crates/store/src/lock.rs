//! Store-directory ownership: one process per WAL directory.
//!
//! Two processes appending to the same segmented WAL would interleave
//! frames and corrupt each other's recovery; two `LabStore`s replaying the
//! same directory would each believe their in-memory view is authoritative.
//! So [`DirLock::acquire`] takes an **advisory `flock`** on a `LOCK` file
//! in the store directory before [`crate::log::DurableLog`] touches any
//! segment, and holds it for the log's lifetime (the lock releases with
//! the file descriptor — on drop, or automatically when the process dies,
//! so a crash never leaves the store permanently locked).
//!
//! The lock file body names the holder (`pid <n> since <unix-secs>`), so a
//! refused open can say *who* has the store, not just that someone does.

use std::fs::File;
use std::path::Path;

use crate::error::{storage, Result, StoreError};
use crate::io::{io_for, StorageFile};

/// Name of the lock file inside a store directory.
pub const LOCK_FILE: &str = "LOCK";

/// An exclusive, advisory lock on a store directory. Held for the lifetime
/// of the value; released on drop or process death.
#[derive(Debug)]
pub struct DirLock {
    // Held only for the flock; the descriptor closing is the unlock.
    _file: Box<dyn StorageFile>,
}

impl DirLock {
    /// Take the exclusive lock on `dir`, refusing immediately (no
    /// blocking) if another live process holds it. The error names the
    /// holder recorded in the lock file.
    pub fn acquire(dir: &Path) -> Result<DirLock> {
        let io = io_for(dir);
        let path = dir.join(LOCK_FILE);
        let file = io
            .open_rw_create(&path)
            .map_err(|e| storage("open lock file", &path, e))?;
        // Injected backends that wrap a real descriptor still flock it;
        // purely synthetic ones degrade to the PID stamp, like non-unix.
        let flocked = file.as_file().map_or(true, try_flock_exclusive);
        if !flocked {
            let holder = io.read_to_string(&path).unwrap_or_default();
            let holder = holder.trim();
            let who = if holder.is_empty() {
                "another process".to_owned()
            } else {
                holder.to_owned()
            };
            return Err(StoreError::Locked(format!(
                "store directory {} is already open by {who} — a WAL-backed store \
                 admits one process at a time (close it or pick another --store dir)",
                dir.display()
            )));
        }
        // We own the lock: stamp the holder for the next refused acquirer.
        let since = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let stamp = format!("pid {} since {since}\n", std::process::id());
        file.set_len(0)
            .and_then(|_| file.write_all_at(0, stamp.as_bytes()))
            .and_then(|_| file.sync_all())
            .map_err(|e| storage("stamp lock file", &path, e))?;
        Ok(DirLock { _file: file })
    }
}

/// Non-blocking exclusive `flock(2)`. Declared directly (the workspace
/// vendors no libc crate); on non-unix targets the lock degrades to the
/// PID stamp alone.
#[cfg(unix)]
fn try_flock_exclusive(file: &File) -> bool {
    use std::os::unix::io::AsRawFd;
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    // Safety: flock on an owned, open descriptor; no memory is passed.
    unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) == 0 }
}

#[cfg(not(unix))]
fn try_flock_exclusive(_file: &File) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("toreador-dirlock-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_acquire_is_refused_and_names_the_holder() {
        let dir = tmp_dir("double");
        let held = DirLock::acquire(&dir).unwrap();
        let err = DirLock::acquire(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, StoreError::Locked(_)), "{msg}");
        assert!(
            msg.contains(&format!("pid {}", std::process::id())),
            "error names the holder: {msg}"
        );
        drop(held);
        // Released with the descriptor: the next acquire succeeds.
        DirLock::acquire(&dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_file_records_the_pid() {
        let dir = tmp_dir("stamp");
        let _held = DirLock::acquire(&dir).unwrap();
        let body = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert!(
            body.starts_with(&format!("pid {} since ", std::process::id())),
            "{body}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
