//! The durable log: segmented write-ahead log + snapshots + recovery.
//!
//! ## On-disk layout
//!
//! A log lives in one directory:
//!
//! ```text
//! store/
//!   wal-00000000000000000001.log     segment: records with LSN >= 1
//!   wal-00000000000000000042.log     segment: records with LSN >= 42
//!   snapshot-00000000000000000041.snap   state covering LSN <= 41
//! ```
//!
//! Every appended record gets a dense **log sequence number** (LSN,
//! starting at 1). A segment file holds a contiguous LSN range; its first
//! LSN is in both the filename and the header, and records inside are
//! implicitly numbered from it. Segments rotate once they exceed
//! [`LogConfig::segment_bytes`].
//!
//! A **snapshot** is the application state after applying every record up
//! to its covered LSN. Snapshots are written to a `.tmp` file, fsynced,
//! then renamed — so a crash mid-snapshot leaves the previous snapshot and
//! the full WAL intact. After a successful snapshot the covered segments
//! are deleted (compaction).
//!
//! ## Record framing
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! ## Recovery invariants
//!
//! * Replay = newest valid snapshot, then every WAL record with a higher
//!   LSN, in LSN order.
//! * A **torn tail** — a final record with missing bytes or a failing
//!   checksum, the signature of a crash mid-append — is truncated away,
//!   not an error. Everything before it is returned intact.
//! * Damage anywhere *else* (bad magic, checksum failure before the tail,
//!   a gap in the segment chain) is [`StoreError::Corrupt`]: recovery
//!   refuses to silently drop interior history.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::crc::crc32;
use crate::error::{storage, Result, StoreError};
use crate::io::{io_for, StorageFile, StorageIo};
use crate::lock::DirLock;

pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"TWALSEG1";
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"TSNAPSH1";
pub(crate) const FORMAT_VERSION: u32 = 1;
/// magic + version + first/covered LSN.
pub(crate) const HEADER_LEN: usize = 8 + 4 + 8;
/// len + crc.
pub(crate) const FRAME_HEADER_LEN: usize = 4 + 4;

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Rotate to a new segment once the current one reaches this many
    /// bytes. Rotation happens *before* an append, so a segment exceeds
    /// the threshold by at most one record.
    pub segment_bytes: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: 1 << 20,
        }
    }
}

/// What [`DurableLog::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// Payload of the newest valid snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// LSN covered by that snapshot (0 = none).
    pub snapshot_lsn: u64,
    /// Every durable record after the snapshot: `(lsn, payload)`, dense
    /// and ascending.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes truncated from a torn tail (0 = clean shutdown).
    pub torn_bytes: u64,
}

/// An append-only, checksummed, segmented log with snapshot compaction.
#[derive(Debug)]
pub struct DurableLog {
    dir: PathBuf,
    cfg: LogConfig,
    /// The filesystem backend, resolved once at open (see [`crate::io`]).
    io: Arc<dyn StorageIo>,
    /// Current segment, open for appending.
    file: Box<dyn StorageFile>,
    current_path: PathBuf,
    current_records: u64,
    current_bytes: u64,
    /// Sealed (no longer written) segments, kept until the next snapshot.
    sealed: Vec<PathBuf>,
    next_lsn: u64,
    snapshot_lsn: u64,
    snapshot_path: Option<PathBuf>,
    /// Exclusive ownership of the directory; released when the log drops.
    _lock: DirLock,
}

/// Point-in-time observability numbers for tests, stats and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogStats {
    /// Segment files currently on disk (sealed + current).
    pub segments: usize,
    /// LSN covered by the newest snapshot (0 = none).
    pub snapshot_lsn: u64,
    /// LSN of the last appended record (0 = empty log).
    pub last_lsn: u64,
    /// Bytes in the current segment (header included).
    pub current_segment_bytes: u64,
}

impl DurableLog {
    /// Open (or create) the log in `dir`, recovering durable state.
    pub fn open(dir: impl AsRef<Path>, cfg: LogConfig) -> Result<(DurableLog, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        let io = io_for(&dir);
        io.create_dir_all(&dir)
            .map_err(|e| storage("create store dir", &dir, e))?;

        // One process per store directory: take the advisory lock before
        // reading or writing any segment.
        let lock = DirLock::acquire(&dir)?;

        // Inventory the directory. Leftover `.tmp` files are incomplete
        // snapshot writes from a crash — discard them.
        let mut segment_firsts: Vec<u64> = Vec::new();
        let mut snapshots: Vec<(u64, PathBuf)> = Vec::new();
        for path in io
            .list_dir(&dir)
            .map_err(|e| storage("list store dir", &dir, e))?
        {
            let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            if name.ends_with(".tmp") {
                let _ = io.remove_file(&path);
            } else if let Some(lsn) = parse_name(&name, "wal-", ".log") {
                segment_firsts.push(lsn);
            } else if let Some(lsn) = parse_name(&name, "snapshot-", ".snap") {
                snapshots.push((lsn, path));
            }
        }

        // Newest readable snapshot wins; torn snapshots are deleted, and
        // older superseded snapshots are compacted away.
        snapshots.sort_by_key(|(lsn, _)| std::cmp::Reverse(*lsn));
        let mut snapshot: Option<Vec<u8>> = None;
        let mut snapshot_lsn = 0u64;
        let mut snapshot_path = None;
        for (lsn, path) in snapshots {
            if snapshot.is_some() {
                io.remove_file(&path)
                    .map_err(|e| storage("remove superseded snapshot", &path, e))?;
            } else if let Some(payload) = read_snapshot(io.as_ref(), &path, lsn)? {
                snapshot = Some(payload);
                snapshot_lsn = lsn;
                snapshot_path = Some(path);
            } else {
                io.remove_file(&path)
                    .map_err(|e| storage("remove torn snapshot", &path, e))?;
            }
        }

        // Drop segments the snapshot fully covers: segment i spans
        // [first_i, first_{i+1}); if that whole range is <= snapshot_lsn
        // it has nothing to replay. (Normally compaction already deleted
        // them — this handles a crash between snapshot and compaction.)
        segment_firsts.sort_unstable();
        let mut remaining: Vec<u64> = Vec::new();
        for (i, &first) in segment_firsts.iter().enumerate() {
            let covered = segment_firsts
                .get(i + 1)
                .is_some_and(|&next| next <= snapshot_lsn + 1);
            if covered {
                let path = segment_path(&dir, first);
                io.remove_file(&path)
                    .map_err(|e| storage("remove covered segment", &path, e))?;
            } else {
                remaining.push(first);
            }
        }

        // Replay the chain.
        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut torn_bytes = 0u64;
        let mut expected_first = snapshot_lsn + 1;
        let mut tail: Option<(PathBuf, u64, u64, u64)> = None; // path, first, records, good_bytes
        let last_index = remaining.len().wrapping_sub(1);
        for (i, &first) in remaining.iter().enumerate() {
            let path = segment_path(&dir, first);
            if first > expected_first {
                return Err(StoreError::Corrupt(format!(
                    "gap in wal chain: expected a segment covering lsn {expected_first}, \
                     next segment starts at {first}"
                )));
            }
            let is_last = i == last_index;
            let scan = read_segment(io.as_ref(), &path, first, is_last)?;
            let Some(scan) = scan else {
                // Torn header on the final, freshly-created segment: it
                // holds no durable records. Remove it; a fresh segment is
                // created below.
                torn_bytes += io.file_len(&path).unwrap_or(0);
                io.remove_file(&path)
                    .map_err(|e| storage("remove torn segment", &path, e))?;
                continue;
            };
            torn_bytes += scan.torn_bytes;
            for (k, payload) in scan.records.into_iter().enumerate() {
                let lsn = first + k as u64;
                if lsn > snapshot_lsn {
                    records.push((lsn, payload));
                }
            }
            expected_first = first + scan.record_count;
            if is_last {
                tail = Some((path, first, scan.record_count, scan.good_bytes));
            } else {
                // Sealed segments stay around until the next snapshot.
            }
        }

        let next_lsn = expected_first;
        let mut sealed: Vec<PathBuf> = Vec::new();
        for &first in &remaining {
            let path = segment_path(&dir, first);
            if tail.as_ref().is_some_and(|(tp, ..)| *tp == path) || !io.exists(&path) {
                continue;
            }
            sealed.push(path);
        }

        // Reopen the tail segment for appending (truncating any torn
        // bytes), or start a fresh one.
        let (file, current_path, current_records, current_bytes) = match tail {
            Some((path, _, record_count, good_bytes)) => {
                let file = io
                    .open_rw(&path)
                    .map_err(|e| storage("open wal tail", &path, e))?;
                let len = file.len().map_err(|e| storage("stat wal tail", &path, e))?;
                if len > good_bytes {
                    file.set_len(good_bytes)
                        .map_err(|e| storage("truncate torn tail", &path, e))?;
                    file.sync_all()
                        .map_err(|e| storage("fsync wal tail", &path, e))?;
                }
                (file, path, record_count, good_bytes)
            }
            None => {
                let (file, path) = create_segment(io.as_ref(), &dir, next_lsn)?;
                (file, path, 0, HEADER_LEN as u64)
            }
        };

        let log = DurableLog {
            dir,
            cfg,
            io,
            file,
            current_path,
            current_records,
            current_bytes,
            sealed,
            next_lsn,
            snapshot_lsn,
            snapshot_path,
            _lock: lock,
        };
        let recovery = Recovery {
            snapshot,
            snapshot_lsn,
            records,
            torn_bytes,
        };
        Ok((log, recovery))
    }

    /// Append one record; returns its LSN. The bytes reach the kernel
    /// before this returns; call [`DurableLog::sync`] to force them to
    /// stable storage.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if self.current_bytes >= self.cfg.segment_bytes && self.current_records > 0 {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all_at(self.current_bytes, &frame)
            .map_err(|e| storage("append wal record", &self.current_path, e))?;
        self.current_bytes += frame.len() as u64;
        self.current_records += 1;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| storage("fsync wal", &self.current_path, e))
    }

    /// Write a snapshot covering every record appended so far, then drop
    /// the segments (and older snapshots) it supersedes.
    pub fn snapshot(&mut self, state: &[u8]) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| storage("fsync wal", &self.current_path, e))?;
        let covered = self.next_lsn - 1;

        // Write-then-rename so a crash leaves either the old snapshot or
        // the new one, never a half-written file that parses. A failure
        // mid-write removes the temp file — no orphan survives the error.
        let final_path = self.dir.join(format!("snapshot-{covered:020}.snap"));
        let tmp_path = self.dir.join(format!("snapshot-{covered:020}.snap.tmp"));
        {
            let f = self
                .io
                .create(&tmp_path)
                .map_err(|e| storage("create snapshot temp", &tmp_path, e))?;
            let mut buf = Vec::with_capacity(HEADER_LEN + FRAME_HEADER_LEN + state.len());
            buf.extend_from_slice(SNAPSHOT_MAGIC);
            buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            buf.extend_from_slice(&covered.to_le_bytes());
            buf.extend_from_slice(&(state.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(state).to_le_bytes());
            buf.extend_from_slice(state);
            if let Err(e) = f.write_all_at(0, &buf).and_then(|_| f.sync_all()) {
                let _ = self.io.remove_file(&tmp_path);
                return Err(storage("write snapshot", &tmp_path, e));
            }
        }
        if let Err(e) = self.io.rename(&tmp_path, &final_path) {
            let _ = self.io.remove_file(&tmp_path);
            return Err(storage("publish snapshot", &final_path, e));
        }
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| storage("fsync store dir", &self.dir, e))?;

        // Compaction: every sealed segment is now covered; the current
        // segment is too, so swap in a fresh one before deleting it.
        if self.current_records > 0 {
            let (file, path) = create_segment(self.io.as_ref(), &self.dir, self.next_lsn)?;
            let old_path = std::mem::replace(&mut self.current_path, path);
            self.file = file;
            self.current_records = 0;
            self.current_bytes = HEADER_LEN as u64;
            self.io
                .remove_file(&old_path)
                .map_err(|e| storage("remove covered segment", &old_path, e))?;
        }
        for seg in self.sealed.drain(..) {
            self.io
                .remove_file(&seg)
                .map_err(|e| storage("remove covered segment", &seg, e))?;
        }
        if let Some(old) = self.snapshot_path.take() {
            if old != final_path {
                self.io
                    .remove_file(&old)
                    .map_err(|e| storage("remove superseded snapshot", &old, e))?;
            }
        }
        self.snapshot_path = Some(final_path);
        self.snapshot_lsn = covered;
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| storage("fsync store dir", &self.dir, e))?;
        Ok(())
    }

    /// LSN of the last appended record (0 = nothing appended yet).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// LSN covered by the newest snapshot (0 = none).
    pub fn snapshot_lsn(&self) -> u64 {
        self.snapshot_lsn
    }

    /// Records appended since the last snapshot.
    pub fn records_since_snapshot(&self) -> u64 {
        self.last_lsn() - self.snapshot_lsn
    }

    /// Directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current on-disk shape.
    pub fn stats(&self) -> LogStats {
        LogStats {
            segments: self.sealed.len() + 1,
            snapshot_lsn: self.snapshot_lsn,
            last_lsn: self.last_lsn(),
            current_segment_bytes: self.current_bytes,
        }
    }

    /// Seal the current segment and start a new one at `next_lsn`.
    fn rotate(&mut self) -> Result<()> {
        // Seal with sync_all (not sync_data): the sealed segment's final
        // length is metadata, and recovery trusts it.
        self.file
            .sync_all()
            .map_err(|e| storage("seal segment", &self.current_path, e))?;
        let (file, path) = create_segment(self.io.as_ref(), &self.dir, self.next_lsn)?;
        let old_path = std::mem::replace(&mut self.current_path, path);
        self.sealed.push(old_path);
        self.file = file;
        self.current_records = 0;
        self.current_bytes = HEADER_LEN as u64;
        // Make the rotation itself durable: a crash right here must come
        // back with both the sealed segment and the new one visible, the
        // same guarantee the snapshot rename path gives.
        self.io
            .sync_dir(&self.dir)
            .map_err(|e| storage("fsync store dir", &self.dir, e))?;
        Ok(())
    }
}

/// A freshly created, header-only segment open for appending. A failure
/// writing or syncing the header removes the partial file — a half-born
/// segment must not survive to confuse the next recovery.
fn create_segment(
    io: &dyn StorageIo,
    dir: &Path,
    first_lsn: u64,
) -> Result<(Box<dyn StorageFile>, PathBuf)> {
    let path = segment_path(dir, first_lsn);
    let file = io
        .create(&path)
        .map_err(|e| storage("create segment", &path, e))?;
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(SEGMENT_MAGIC);
    header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    header.extend_from_slice(&first_lsn.to_le_bytes());
    let written = file
        .write_all_at(0, &header)
        .and_then(|_| file.sync_all())
        .and_then(|_| io.sync_dir(dir));
    if let Err(e) = written {
        let _ = io.remove_file(&path);
        return Err(storage("initialise segment", &path, e));
    }
    Ok((file, path))
}

pub(crate) fn segment_path(dir: &Path, first_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.log"))
}

/// `wal-<n>.log` / `snapshot-<n>.snap` → `n`.
pub(crate) fn parse_name(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// What scanning one segment produced.
pub(crate) struct SegmentScan {
    pub(crate) records: Vec<Vec<u8>>,
    pub(crate) record_count: u64,
    /// Offset of the end of the last intact frame.
    pub(crate) good_bytes: u64,
    /// Bytes after `good_bytes` (torn tail), if this was the last segment.
    pub(crate) torn_bytes: u64,
}

/// Read and validate one segment.
///
/// `is_last` selects the recovery discipline: the final segment may end in
/// a torn record (truncated by the caller); any earlier segment must be
/// perfectly formed. Returns `Ok(None)` when the final segment's *header*
/// is torn — it holds no records and should be deleted.
pub(crate) fn read_segment(
    io: &dyn StorageIo,
    path: &Path,
    expected_first_lsn: u64,
    is_last: bool,
) -> Result<Option<SegmentScan>> {
    let bytes = io
        .read(path)
        .map_err(|e| storage("read segment", path, e))?;
    scan_segment_bytes(&bytes, path, expected_first_lsn, is_last)
}

/// [`read_segment`] on bytes already in memory (shared with `fsck`).
pub(crate) fn scan_segment_bytes(
    bytes: &[u8],
    path: &Path,
    expected_first_lsn: u64,
    is_last: bool,
) -> Result<Option<SegmentScan>> {
    if bytes.len() < HEADER_LEN {
        if is_last {
            return Ok(None);
        }
        return Err(StoreError::Corrupt(format!(
            "segment {path:?}: truncated header in a non-final segment"
        )));
    }
    if &bytes[0..8] != SEGMENT_MAGIC {
        return Err(StoreError::Corrupt(format!("segment {path:?}: bad magic")));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "segment {path:?}: unsupported format version {version}"
        )));
    }
    let first_lsn = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if first_lsn != expected_first_lsn {
        return Err(StoreError::Corrupt(format!(
            "segment {path:?}: header says first lsn {first_lsn}, name says {expected_first_lsn}"
        )));
    }

    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    loop {
        if offset == bytes.len() {
            break; // clean end
        }
        let frame = read_frame(bytes, offset);
        match frame {
            Some((payload, next)) => {
                records.push(payload);
                offset = next;
            }
            None if is_last => break, // torn tail: truncate at `offset`
            None => {
                return Err(StoreError::Corrupt(format!(
                    "segment {path:?}: damaged record at offset {offset} \
                     in a non-final segment"
                )));
            }
        }
    }
    Ok(Some(SegmentScan {
        record_count: records.len() as u64,
        records,
        good_bytes: offset as u64,
        torn_bytes: (bytes.len() - offset) as u64,
    }))
}

/// One frame at `offset`, or `None` if it is incomplete/damaged.
pub(crate) fn read_frame(bytes: &[u8], offset: usize) -> Option<(Vec<u8>, usize)> {
    let header_end = offset.checked_add(FRAME_HEADER_LEN)?;
    if header_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
    let payload_end = header_end.checked_add(len)?;
    if payload_end > bytes.len() {
        return None;
    }
    let payload = &bytes[header_end..payload_end];
    if crc32(payload) != want {
        return None;
    }
    Some((payload.to_vec(), payload_end))
}

/// Read and validate a snapshot file; `Ok(None)` = torn/invalid payload
/// (ignore this snapshot and fall back).
fn read_snapshot(io: &dyn StorageIo, path: &Path, expected_lsn: u64) -> Result<Option<Vec<u8>>> {
    let bytes = io
        .read(path)
        .map_err(|e| storage("read snapshot", path, e))?;
    Ok(scan_snapshot_bytes(&bytes, expected_lsn))
}

/// Validate snapshot bytes; `None` = torn/invalid (shared with `fsck`).
pub(crate) fn scan_snapshot_bytes(bytes: &[u8], expected_lsn: u64) -> Option<Vec<u8>> {
    if bytes.len() < HEADER_LEN || &bytes[0..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let covered = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if version != FORMAT_VERSION || covered != expected_lsn {
        return None;
    }
    match read_frame(bytes, HEADER_LEN) {
        Some((payload, end)) if end == bytes.len() => Some(payload),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::{self, OpenOptions};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("toreador-store-log-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(i: usize) -> Vec<u8> {
        format!("record-{i}-{}", "x".repeat(i % 7)).into_bytes()
    }

    #[test]
    fn round_trip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut log, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
            assert!(rec.records.is_empty() && rec.snapshot.is_none());
            for i in 0..10 {
                assert_eq!(log.append(&payload(i)).unwrap(), i as u64 + 1);
            }
            log.sync().unwrap();
        }
        let (log, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 10);
        assert_eq!(rec.torn_bytes, 0);
        for (i, (lsn, p)) in rec.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(*p, payload(i));
        }
        assert_eq!(log.last_lsn(), 10);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rotation_caps_segment_size_and_replay_spans_segments() {
        let dir = tmp_dir("rotate");
        let cfg = LogConfig { segment_bytes: 128 };
        {
            let (mut log, _) = DurableLog::open(&dir, cfg).unwrap();
            for i in 0..50 {
                log.append(&payload(i)).unwrap();
            }
            assert!(log.stats().segments > 1, "{:?}", log.stats());
            log.sync().unwrap();
        }
        let (_, rec) = DurableLog::open(&dir, cfg).unwrap();
        assert_eq!(rec.records.len(), 50);
        assert!(rec.records.windows(2).all(|w| w[1].0 == w[0].0 + 1));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_segments_and_recovery_prefers_it() {
        let dir = tmp_dir("snapshot");
        let cfg = LogConfig { segment_bytes: 96 };
        {
            let (mut log, _) = DurableLog::open(&dir, cfg).unwrap();
            for i in 0..30 {
                log.append(&payload(i)).unwrap();
            }
            let before = log.stats().segments;
            assert!(before > 1);
            log.snapshot(b"STATE-AT-30").unwrap();
            assert_eq!(log.stats().segments, 1);
            assert_eq!(log.snapshot_lsn(), 30);
            // Tail records after the snapshot.
            for i in 30..35 {
                log.append(&payload(i)).unwrap();
            }
            log.sync().unwrap();
        }
        let (log, rec) = DurableLog::open(&dir, cfg).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"STATE-AT-30"[..]));
        assert_eq!(rec.snapshot_lsn, 30);
        let lsns: Vec<u64> = rec.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![31, 32, 33, 34, 35]);
        assert_eq!(log.records_since_snapshot(), 5);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = tmp_dir("torn");
        {
            let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
            for i in 0..5 {
                log.append(&payload(i)).unwrap();
            }
            log.sync().unwrap();
        }
        // Tear the final record: chop 3 bytes off the segment.
        let seg = segment_path(&dir, 1);
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (mut log, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 4, "durable prefix survives");
        assert!(rec.torn_bytes > 0);
        // The torn LSN is reused by the next append.
        assert_eq!(log.append(b"after-recovery").unwrap(), 5);
        log.sync().unwrap();
        drop(log); // release the directory lock before reopening
        let (_, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.records[4].1, b"after-recovery");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn interior_damage_is_corruption_not_silent_loss() {
        let dir = tmp_dir("interior");
        let cfg = LogConfig { segment_bytes: 96 };
        {
            let (mut log, _) = DurableLog::open(&dir, cfg).unwrap();
            for i in 0..30 {
                log.append(&payload(i)).unwrap();
            }
            assert!(log.stats().segments > 1);
            log.sync().unwrap();
        }
        // Flip a payload byte in the FIRST (non-final) segment.
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let k = HEADER_LEN + FRAME_HEADER_LEN + 1;
        bytes[k] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let err = DurableLog::open(&dir, cfg).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_segment_is_a_chain_gap() {
        let dir = tmp_dir("gap");
        let cfg = LogConfig { segment_bytes: 96 };
        {
            let (mut log, _) = DurableLog::open(&dir, cfg).unwrap();
            for i in 0..30 {
                log.append(&payload(i)).unwrap();
            }
            assert!(log.stats().segments > 2);
            log.sync().unwrap();
        }
        // Delete a middle segment.
        let mut firsts: Vec<u64> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| parse_name(&e.unwrap().file_name().to_string_lossy(), "wal-", ".log"))
            .collect();
        firsts.sort_unstable();
        fs::remove_file(segment_path(&dir, firsts[1])).unwrap();
        let err = DurableLog::open(&dir, cfg).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_snapshot_falls_back_to_wal_replay() {
        let dir = tmp_dir("torn-snap");
        {
            let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
            for i in 0..8 {
                log.append(&payload(i)).unwrap();
            }
            log.snapshot(b"GOOD").unwrap();
            for i in 8..12 {
                log.append(&payload(i)).unwrap();
            }
            log.sync().unwrap();
        }
        // Fake a *newer* snapshot that is torn mid-payload.
        let bogus = dir.join(format!("snapshot-{:020}.snap", 12));
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&12u64.to_le_bytes());
        buf.extend_from_slice(&100u32.to_le_bytes()); // claims 100 bytes
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"only-a-few");
        fs::write(&bogus, &buf).unwrap();
        let (_, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"GOOD"[..]));
        assert_eq!(rec.snapshot_lsn, 8);
        assert_eq!(rec.records.len(), 4);
        assert!(!bogus.exists(), "torn snapshot deleted");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_payloads_and_empty_log_are_fine() {
        let dir = tmp_dir("empty");
        {
            let (mut log, _) = DurableLog::open(&dir, LogConfig::default()).unwrap();
            log.append(b"").unwrap();
            log.append(b"x").unwrap();
            log.append(b"").unwrap();
            log.sync().unwrap();
        }
        let (log, rec) = DurableLog::open(&dir, LogConfig::default()).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[0].1, b"");
        assert_eq!(log.stats().segments, 1);
        fs::remove_dir_all(dir).unwrap();
    }
}
