//! # toreador-store
//!
//! A crash-safe durable store for the TOREADOR reproduction. The paper's
//! whole premise is that trainees "compare different runs of a composite
//! BDA" across trial-and-error iterations; a BDAaaS platform therefore
//! needs the comparison corpus — sessions, run records, flight-recorder
//! traces, scores — to survive process exits and crashes. This crate is
//! that durability layer:
//!
//! * [`crc`] — CRC-32 (IEEE) guarding every frame on disk;
//! * [`log`] — [`log::DurableLog`]: an append-only, length-prefixed,
//!   checksummed write-ahead log with segment rotation, snapshot +
//!   compaction, and recovery that replays snapshot-then-tail and
//!   truncates a torn final record instead of failing;
//! * [`store`] — [`store::LabStore`]: the typed view on top — per-trainee
//!   session meta, run records keyed by `(trainee, run_id)`, and attempt
//!   scores, all materialised from the log on open.
//!
//! The crate sits between `data` and `labs` in the workspace DAG and is
//! generic over the persisted payload types, so it has no dependency on
//! the Labs — the Labs instantiate it (see `toreador_labs::session`).
//!
//! ## Example
//!
//! ```
//! use toreador_store::prelude::*;
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
//! struct Meta { seed: u64 }
//! #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
//! struct Run { rows: u64 }
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! {
//!     let mut store: LabStore<Meta, Run> = LabStore::open(&dir).unwrap();
//!     store.put_meta("ada", &Meta { seed: 7 }).unwrap();
//!     store.put_run("ada", 1, &Run { rows: 500 }).unwrap();
//! }
//! // A new process opens the same directory and sees the same state.
//! let store: LabStore<Meta, Run> = LabStore::open(&dir).unwrap();
//! assert_eq!(store.run("ada", 1), Some(&Run { rows: 500 }));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod chaos;
pub mod crc;
pub mod error;
pub mod fsck;
pub mod io;
pub mod lock;
pub mod log;
pub mod store;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::chaos::{DiskChaos, DiskChaosPlan, DiskFault, DiskTarget, IoOp, PathClass};
    pub use crate::error::{Result as StoreResult, StoreError};
    pub use crate::fsck::{Artifact, Verdict};
    pub use crate::io::{inject, io_for, IoGuard, RealIo, StorageFile, StorageIo};
    pub use crate::lock::DirLock;
    pub use crate::log::{DurableLog, LogConfig, LogStats, Recovery};
    pub use crate::store::{LabStore, StoreConfig, TraineeState};
}

pub use error::StoreError;
pub use lock::DirLock;
pub use log::{DurableLog, LogConfig, LogStats, Recovery};
pub use store::{LabStore, StoreConfig, TraineeState};
