//! The virtual-filesystem seam every durability layer writes through.
//!
//! The store WAL, the dataflow checkpoint/pager layers and the streaming
//! ack log all talk to disk via [`StorageIo`] (directory-level operations:
//! create/open/read/rename/remove/dir-fsync) and [`StorageFile`]
//! (positional reads and writes plus fsync on one open file). The default
//! implementation, [`RealIo`], is a thin veneer over `std::fs` — and in
//! the common case (nothing injected) [`io_for`] short-circuits on one
//! relaxed atomic load and hands back the shared `RealIo`, so production
//! code pays nothing for the seam.
//!
//! Tests and the `toreador chaos diskful` profile *inject* an alternate
//! backend — [`crate::chaos::DiskChaos`] — for a directory prefix via
//! [`inject`]. Injection is scoped: it applies only to paths under the
//! registered prefix (longest prefix wins), so concurrent tests faulting
//! their own temp directories never see each other's chaos, and it is
//! withdrawn when the returned [`IoGuard`] drops.
//!
//! Layers resolve their backend once per opened object (`io_for(dir)` at
//! construction), so an injected backend stays in force for the object's
//! lifetime even if the guard is dropped later — tests that want a clean
//! post-mortem read should disarm the injector rather than race the
//! guard.

use std::fmt::Debug;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One open file: positional I/O plus durability control. Positional
/// (offset-addressed) reads and writes cover both the WAL's append
/// pattern — the log tracks its own tail offset — and the pager's
/// random page access, without per-file seek state.
// `len` here is a fallible size query, not a collection length — an
// `is_empty` twin would be noise.
#[allow(clippy::len_without_is_empty)]
pub trait StorageFile: Send + Sync + Debug {
    /// Fill `buf` from `offset`, failing on a short read.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
    /// Write all of `data` at `offset`, extending the file if needed.
    fn write_all_at(&self, offset: u64, data: &[u8]) -> io::Result<()>;
    /// Force file *data* to stable storage (`fdatasync`).
    fn sync_data(&self) -> io::Result<()>;
    /// Force data and metadata to stable storage (`fsync`).
    fn sync_all(&self) -> io::Result<()>;
    /// Truncate (or extend) to exactly `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// The underlying OS file, when this backend has one — the directory
    /// lock uses it for `flock(2)`. Injected backends that wrap a real
    /// file should delegate; purely synthetic ones return `None` and the
    /// lock degrades to its PID-stamp protocol.
    fn as_file(&self) -> Option<&File> {
        None
    }
}

/// A filesystem backend: everything the durability layers do to a
/// directory. All methods take explicit paths — the backend holds no
/// current-directory state.
pub trait StorageIo: Send + Sync + Debug {
    /// Create (truncating if present) a file open for read + write.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open an existing file for read + write (no create).
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open for read + write, creating if absent, never truncating —
    /// the lock-file open mode.
    fn open_rw_create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open an existing file read-only.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Length of a file without opening it.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Whether `path` exists at all.
    fn exists(&self, path: &Path) -> bool;
    /// Entries of `dir`, sorted by name for deterministic scans.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    fn remove_dir_all(&self, dir: &Path) -> io::Result<()>;
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Make file creations/renames in `dir` durable. Best-effort where
    /// the platform has no directory fsync.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Read a whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        let bytes = self.read(path)?;
        String::from_utf8(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

// ---------------------------------------------------------------------------
// RealIo: the std::fs-backed default.
// ---------------------------------------------------------------------------

/// A real OS file with positional I/O. On unix this is `pread`/`pwrite`
/// (no shared seek cursor, safe under concurrent page reads); elsewhere a
/// mutex serialises seek + access pairs.
#[derive(Debug)]
pub struct RealFile {
    file: File,
    #[cfg(not(unix))]
    seek_lock: Mutex<()>,
}

impl RealFile {
    fn new(file: File) -> RealFile {
        RealFile {
            file,
            #[cfg(not(unix))]
            seek_lock: Mutex::new(()),
        }
    }
}

impl StorageFile for RealFile {
    #[cfg(unix)]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _guard = self.seek_lock.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    #[cfg(unix)]
    fn write_all_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(data, offset)
    }

    #[cfg(not(unix))]
    fn write_all_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _guard = self.seek_lock.lock().unwrap();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)
    }

    fn sync_data(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn sync_all(&self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn as_file(&self) -> Option<&File> {
        Some(&self.file)
    }
}

/// The default backend: plain `std::fs`.
#[derive(Debug, Default)]
pub struct RealIo;

impl StorageIo for RealIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile::new(file)))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile::new(file)))
    }

    fn open_rw_create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(RealFile::new(file)))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(RealFile::new(File::open(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::remove_dir_all(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is POSIX-only; on other platforms the rename is
        // already as durable as the platform offers.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The injection registry.
// ---------------------------------------------------------------------------

/// How many injections are currently registered. The common-case fast
/// path: zero means `io_for` returns the shared `RealIo` without taking
/// any lock.
static INJECTED: AtomicUsize = AtomicUsize::new(0);

/// Monotonic ids so a guard removes exactly its own entry.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

type Registry = Mutex<Vec<(u64, PathBuf, Arc<dyn StorageIo>)>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// The shared default backend.
pub fn real_io() -> Arc<dyn StorageIo> {
    static REAL: OnceLock<Arc<RealIo>> = OnceLock::new();
    REAL.get_or_init(|| Arc::new(RealIo)).clone() as Arc<dyn StorageIo>
}

/// The backend responsible for `path`: the injected backend with the
/// longest registered prefix containing it, or the shared [`RealIo`]
/// when none matches. Prefixes match whole path components, so an
/// injection on `/tmp/a` never captures `/tmp/ab`.
pub fn io_for(path: &Path) -> Arc<dyn StorageIo> {
    if INJECTED.load(Ordering::Acquire) == 0 {
        return real_io();
    }
    let reg = registry().lock().unwrap();
    reg.iter()
        .filter(|(_, prefix, _)| path.starts_with(prefix))
        .max_by_key(|(_, prefix, _)| prefix.as_os_str().len())
        .map(|(_, _, io)| io.clone())
        .unwrap_or_else(real_io)
}

/// Withdraws an injection when dropped.
#[derive(Debug)]
pub struct IoGuard {
    id: u64,
}

impl Drop for IoGuard {
    fn drop(&mut self) {
        let mut reg = registry().lock().unwrap();
        if let Some(i) = reg.iter().position(|(id, _, _)| *id == self.id) {
            reg.remove(i);
            INJECTED.fetch_sub(1, Ordering::Release);
        }
    }
}

/// Route every path under `prefix` through `io` until the guard drops.
/// Objects resolve their backend at construction, so inject *before*
/// opening the layer under test.
pub fn inject(prefix: impl Into<PathBuf>, io: Arc<dyn StorageIo>) -> IoGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut reg = registry().lock().unwrap();
    reg.push((id, prefix.into(), io));
    INJECTED.fetch_add(1, Ordering::Release);
    IoGuard { id }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("toreador-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_file_positional_io_round_trips() {
        let dir = tmp_dir("posio");
        let io = RealIo;
        let f = io.create(&dir.join("f")).unwrap();
        f.write_all_at(0, b"hello world").unwrap();
        f.write_all_at(6, b"there").unwrap();
        let mut buf = [0u8; 11];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello there");
        assert_eq!(f.len().unwrap(), 11);
        f.set_len(5).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        f.sync_all().unwrap();
        assert!(f.as_file().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_for_defaults_to_real_and_respects_prefix_scope() {
        let dir = tmp_dir("scope");
        // Nothing injected: the shared RealIo.
        let base = io_for(&dir.join("x"));
        base.create(&dir.join("x")).unwrap();

        #[derive(Debug)]
        struct Marker;
        impl StorageIo for Marker {
            fn create(&self, _: &Path) -> io::Result<Box<dyn StorageFile>> {
                Err(io::Error::other("marker"))
            }
            fn open_rw(&self, _: &Path) -> io::Result<Box<dyn StorageFile>> {
                Err(io::Error::other("marker"))
            }
            fn open_rw_create(&self, _: &Path) -> io::Result<Box<dyn StorageFile>> {
                Err(io::Error::other("marker"))
            }
            fn open_read(&self, _: &Path) -> io::Result<Box<dyn StorageFile>> {
                Err(io::Error::other("marker"))
            }
            fn read(&self, _: &Path) -> io::Result<Vec<u8>> {
                Err(io::Error::other("marker"))
            }
            fn file_len(&self, _: &Path) -> io::Result<u64> {
                Err(io::Error::other("marker"))
            }
            fn exists(&self, _: &Path) -> bool {
                false
            }
            fn list_dir(&self, _: &Path) -> io::Result<Vec<PathBuf>> {
                Err(io::Error::other("marker"))
            }
            fn create_dir_all(&self, _: &Path) -> io::Result<()> {
                Err(io::Error::other("marker"))
            }
            fn remove_file(&self, _: &Path) -> io::Result<()> {
                Err(io::Error::other("marker"))
            }
            fn remove_dir_all(&self, _: &Path) -> io::Result<()> {
                Err(io::Error::other("marker"))
            }
            fn rename(&self, _: &Path, _: &Path) -> io::Result<()> {
                Err(io::Error::other("marker"))
            }
            fn sync_dir(&self, _: &Path) -> io::Result<()> {
                Err(io::Error::other("marker"))
            }
        }

        let sub = dir.join("inner");
        let guard = inject(&sub, Arc::new(Marker));
        // In scope: the marker backend answers.
        assert!(io_for(&sub.join("f")).read(&sub.join("f")).is_err());
        // Out of scope (sibling path): still real.
        let sibling = dir.join("inner-other");
        fs::create_dir_all(&sibling).unwrap();
        io_for(&sibling.join("f"))
            .create(&sibling.join("f"))
            .unwrap();
        drop(guard);
        // Withdrawn: the prefix is real again.
        fs::create_dir_all(&sub).unwrap();
        io_for(&sub.join("f")).create(&sub.join("f")).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
