//! The storage fault matrix: every (layer × fault × injection point)
//! either completes byte-identically after retry/recovery or fails with
//! a classified `Storage`-family error naming the path and operation —
//! never a panic, never silent loss of synced data, never a leaked temp
//! file once the injector is disarmed.
//!
//! The matrix is driven by the same `class:op:ordinal:fault` target specs
//! the `DiskChaos` injector exposes, so adding a row is adding a string.
//! Scale the randomized passes with `PROPTEST_CASES` (default 8).

use std::path::{Path, PathBuf};

use toreador_store::chaos::{DiskChaos, DiskChaosPlan, DiskTarget, INJECTED_MARKER};
use toreador_store::fsck::{repair, scan_store_dir};
use toreador_store::log::{DurableLog, LogConfig};
use toreador_store::StoreError;

fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("toreador-disk-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The scripted WAL workload every matrix row runs: open, append in
/// synced batches, snapshot mid-way, keep appending across a couple of
/// rotations. Returns the records appended and how many were synced
/// before the first error (or all of them on success).
fn wal_workload(dir: &Path) -> (Vec<Vec<u8>>, usize, Result<(), StoreError>) {
    let cfg = LogConfig { segment_bytes: 256 };
    let mut appended: Vec<Vec<u8>> = Vec::new();
    let mut synced = 0usize;
    let run = (|| -> Result<(), StoreError> {
        let (mut log, _) = DurableLog::open(dir, cfg)?;
        for batch in 0..6 {
            for i in 0..5 {
                let payload = format!("batch-{batch}-record-{i}").into_bytes();
                log.append(&payload)?;
                appended.push(payload);
            }
            log.sync()?;
            synced = appended.len();
            if batch == 2 {
                log.snapshot(format!("snapshot-after-{}", appended.len()).as_bytes())?;
            }
        }
        Ok(())
    })();
    (appended, synced, run)
}

/// The post-mortem every row must pass, with the injector disarmed:
/// recovery succeeds, recovers an exact prefix of what was appended (at
/// least the synced part when syncs were honest), and an fsck pass after
/// proven-safe repairs reports nothing corrupt and nothing left over.
fn verify_recovery(dir: &Path, appended: &[Vec<u8>], min_survivors: usize) {
    let (log, rec) = DurableLog::open(dir, LogConfig { segment_bytes: 256 }).unwrap();
    // Reassemble the full durable suffix: snapshot payload tells us how
    // many records it covers (we encoded the count into it).
    let covered = rec
        .snapshot
        .as_ref()
        .map(|s| {
            String::from_utf8_lossy(s)
                .strip_prefix("snapshot-after-")
                .expect("snapshot payload is ours")
                .parse::<usize>()
                .unwrap()
        })
        .unwrap_or(0);
    let recovered = covered + rec.records.len();
    assert!(
        recovered >= min_survivors,
        "synced data lost: {recovered} recovered < {min_survivors} synced"
    );
    assert!(
        recovered <= appended.len(),
        "recovered {recovered} records but only {} were ever appended",
        appended.len()
    );
    for (i, (lsn, payload)) in rec.records.iter().enumerate() {
        assert_eq!(*lsn as usize, covered + i + 1, "dense ascending lsns");
        assert_eq!(
            payload,
            &appended[covered + i],
            "record {lsn} must match what was appended"
        );
    }
    drop(log);
    // fsck after recovery: apply proven-safe repairs, then nothing may
    // remain corrupt and no temp file may survive.
    for a in scan_store_dir(dir).unwrap() {
        let _ = repair(&a);
    }
    let after = scan_store_dir(dir).unwrap();
    for a in &after {
        assert!(
            !a.verdict.is_corrupt(),
            "corrupt artifact after recovery: {a:?}"
        );
        assert_ne!(a.kind, "temp", "leaked temp file: {a:?}");
    }
}

/// Classified means: a `Storage`-family error (or `Io` from the blanket
/// conversion) whose message carries the injector's marker, the failing
/// operation, and the path.
fn assert_classified(err: &StoreError) {
    let msg = err.to_string();
    assert!(
        matches!(err, StoreError::Storage { .. } | StoreError::Io(_)),
        "unclassified error family: {err:?}"
    );
    assert!(
        msg.contains(INJECTED_MARKER),
        "error does not name the injected fault: {msg}"
    );
    if let StoreError::Storage { op, path, .. } = err {
        assert!(!op.is_empty(), "storage error without an operation");
        assert_ne!(path, &PathBuf::new(), "storage error without a path");
    }
}

/// One matrix row: run the workload under a single scheduled fault.
fn run_row(spec: &str) {
    let dir = tmp_dir(&spec.replace([':', '@'], "-"));
    let target = DiskTarget::parse(spec).unwrap();
    let (chaos, _guard) = DiskChaos::register(&dir, DiskChaosPlan::targeted(vec![target]));
    let (appended, synced, result) = wal_workload(&dir);
    match &result {
        Ok(()) => {
            // The fault never fired (ordinal past the workload's I/O
            // count) or the layer absorbed it — either way the store
            // must be fully intact.
            assert_eq!(synced, appended.len());
        }
        Err(e) => assert_classified(e),
    }
    chaos.disarm();
    // Torn writes may have left un-acked bytes; syncs all really ran
    // (no fsync lies in this matrix), so everything synced must survive.
    verify_recovery(&dir, &appended, synced);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_matrix_every_layer_times_fault_times_injection_point() {
    let ops_per_class: &[(&str, &[&str])] = &[
        ("wal", &["create", "write", "sync"]),
        ("snapshot", &["create", "write", "sync", "rename"]),
        ("lock", &["create", "write"]),
        ("dir", &["syncdir"]),
        ("any", &["write", "sync"]),
    ];
    let faults = ["eio", "enospc", "torn@0", "torn@7"];
    let ordinals = [0u64, 1, 3, 9];
    for (class, ops) in ops_per_class {
        for op in *ops {
            for fault in &faults {
                if *op == "sync" && fault.starts_with("torn") {
                    continue; // torn applies to writes only
                }
                for ordinal in &ordinals {
                    run_row(&format!("{class}:{op}:{ordinal}:{fault}"));
                }
            }
        }
    }
}

#[test]
fn background_eio_rates_always_classify_and_recover() {
    for case in 0..cases() {
        let dir = tmp_dir(&format!("flaky-{case}"));
        let (chaos, _guard) = DiskChaos::register(&dir, DiskChaosPlan::flaky(0xD15C + case, 0.08));
        let (appended, synced, result) = wal_workload(&dir);
        if let Err(e) = &result {
            assert_classified(e);
        }
        chaos.disarm();
        verify_recovery(&dir, &appended, synced);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn enospc_budget_halts_the_log_without_losing_the_synced_prefix() {
    for case in 0..cases() {
        let dir = tmp_dir(&format!("enospc-{case}"));
        // Bounded well below the workload's ~850 total bytes so the
        // budget always runs out, whatever PROPTEST_CASES says.
        let plan = DiskChaosPlan {
            enospc_after_bytes: Some(120 + (97 * case) % 400),
            ..DiskChaosPlan::default()
        };
        let (chaos, _guard) = DiskChaos::register(&dir, plan);
        let (appended, synced, result) = wal_workload(&dir);
        let err = result.expect_err("a few hundred bytes cannot fit the whole workload");
        assert_classified(&err);
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        chaos.disarm();
        verify_recovery(&dir, &appended, synced);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn fsync_lies_plus_power_cut_lose_only_an_unsynced_suffix() {
    for case in 0..cases() {
        let dir = tmp_dir(&format!("powercut-{case}"));
        let plan = DiskChaosPlan {
            fsync_lies: true,
            ..DiskChaosPlan::default()
        };
        let (chaos, _guard) = DiskChaos::register(&dir, plan);
        let (appended, _synced, result) = wal_workload(&dir);
        result.expect("fsync lies report success");
        chaos.power_cut().unwrap();
        chaos.disarm();
        // Nothing was ever truly synced, so any prefix (including the
        // empty one) is an honest outcome — but whatever survives must
        // be an exact, dense prefix: no reordering, no corruption.
        verify_recovery(&dir, &appended, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn sixteen_threads_of_disk_chaos_never_panic_or_lose_synced_data() {
    let iterations = cases().max(2);
    let handles: Vec<_> = (0..16)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..iterations {
                    let dir = tmp_dir(&format!("mt-{t}-{i}"));
                    let seed = (t as u64) << 32 | i;
                    let (chaos, _guard) =
                        DiskChaos::register(&dir, DiskChaosPlan::flaky(seed, 0.05));
                    let (appended, synced, result) = wal_workload(&dir);
                    if let Err(e) = &result {
                        assert_classified(e);
                    }
                    chaos.disarm();
                    verify_recovery(&dir, &appended, synced);
                    let _ = std::fs::remove_dir_all(&dir);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no chaos thread may panic");
    }
}
