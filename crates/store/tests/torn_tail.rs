//! Torn-write recovery, proven exhaustively and by property.
//!
//! The claim (DESIGN.md §7): a crash can tear at most the record that was
//! being appended, and recovery must return exactly the durable prefix —
//! for *every* byte offset the tear can land on — without error, and the
//! log must accept appends afterwards.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use toreador_store::{DurableLog, LogConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("toreador-store-torn-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Copy every file of `src` into a fresh `dst`.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The last `wal-*.log` segment in a directory.
fn last_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}

/// Build a log of `payloads` in `dir`; returns the byte length of the
/// final record's frame (header + payload).
fn build_log(dir: &Path, cfg: LogConfig, payloads: &[Vec<u8>]) -> u64 {
    let (mut log, _) = DurableLog::open(dir, cfg).unwrap();
    for p in payloads {
        log.append(p).unwrap();
    }
    log.sync().unwrap();
    8 + payloads.last().map_or(0, |p| p.len() as u64)
}

#[test]
fn every_truncation_offset_of_the_final_record_recovers_the_prefix() {
    let cfg = LogConfig::default();
    let payloads: Vec<Vec<u8>> = (0..6)
        .map(|i| format!("record-{i}-{}", "payload".repeat(i + 1)).into_bytes())
        .collect();
    let base = tmp_dir("exhaustive-base");
    let final_frame = build_log(&base, cfg, &payloads);
    let seg = last_segment(&base);
    let full_len = fs::metadata(&seg).unwrap().len();
    let frame_start = full_len - final_frame;

    let work = tmp_dir("exhaustive-work");
    // Every tear point inside the final record's frame, including its
    // first byte (torn_len = 0 ... final_frame - 1).
    for cut in frame_start..full_len {
        copy_dir(&base, &work);
        let seg = last_segment(&work);
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let (mut log, rec) = DurableLog::open(&work, cfg)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(
            rec.records.len(),
            payloads.len() - 1,
            "cut at {cut}: exactly the durable prefix"
        );
        for (i, (lsn, p)) in rec.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(p, &payloads[i], "cut at {cut}: record {i} intact");
        }
        assert_eq!(rec.torn_bytes, cut - frame_start, "cut at {cut}");

        // The log stays writable, and the re-append becomes durable.
        let lsn = log.append(b"replacement").unwrap();
        assert_eq!(lsn, payloads.len() as u64, "torn LSN is reused");
        log.sync().unwrap();
        drop(log);
        let (_, rec) = DurableLog::open(&work, cfg).unwrap();
        assert_eq!(rec.records.len(), payloads.len());
        assert_eq!(rec.records.last().unwrap().1, b"replacement");
    }
    fs::remove_dir_all(base).unwrap();
    fs::remove_dir_all(work).unwrap();
}

#[test]
fn truncating_the_whole_final_record_is_a_clean_log() {
    let cfg = LogConfig::default();
    let payloads: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 10 + i]).collect();
    let dir = tmp_dir("clean-cut");
    let final_frame = build_log(&dir, cfg, &payloads);
    let seg = last_segment(&dir);
    let full_len = fs::metadata(&seg).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(full_len - final_frame)
        .unwrap();
    let (_, rec) = DurableLog::open(&dir, cfg).unwrap();
    assert_eq!(rec.records.len(), payloads.len() - 1);
    assert_eq!(rec.torn_bytes, 0, "a clean cut is not a tear");
    fs::remove_dir_all(dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random record shapes, random segment sizes (so the tear can land in
    /// a freshly-rotated segment), random tear offsets.
    #[test]
    fn recovery_yields_exactly_the_durable_prefix(
        sizes in prop::collection::vec(0usize..120, 1..12),
        segment_bytes in prop_oneof![Just(64u64), Just(256u64), Just(1u64 << 20)],
        cut_back in 1u64..128,
        case in 0u32..1_000_000,
    ) {
        let cfg = LogConfig { segment_bytes };
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                format!("case-{case}-record-{i}-")
                    .into_bytes()
                    .into_iter()
                    .chain(std::iter::repeat(i as u8).take(n))
                    .collect()
            })
            .collect();
        let dir = tmp_dir(&format!("prop-{case}"));
        let final_frame = build_log(&dir, cfg, &payloads);
        let seg = last_segment(&dir);
        let full_len = fs::metadata(&seg).unwrap().len();
        // Clamp the tear inside the final record's frame.
        let cut = full_len - (cut_back % final_frame) - 1;

        fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(cut).unwrap();
        let (mut log, rec) = DurableLog::open(&dir, cfg).unwrap();
        prop_assert_eq!(rec.records.len(), payloads.len() - 1);
        for (i, (lsn, p)) in rec.records.iter().enumerate() {
            prop_assert_eq!(*lsn, i as u64 + 1);
            prop_assert_eq!(p, &payloads[i]);
        }
        // Still writable after recovery.
        log.append(format!("case-{case}-tail").as_bytes()).unwrap();
        log.sync().unwrap();
        drop(log);
        let (_, rec) = DurableLog::open(&dir, cfg).unwrap();
        prop_assert_eq!(rec.records.len(), payloads.len());
        fs::remove_dir_all(dir).unwrap();
    }
}
